//! High-level experiment orchestration: profiling passes, static
//! placements, dynamic migration runs and annotation runs.
//!
//! Every paper experiment is some composition of these functions; the
//! `ramp-bench` binaries only choose workloads, policies and formatting.

use std::collections::HashSet;

use ramp_avf::StatsTable;
use ramp_sim::units::PageId;
use ramp_trace::Workload;

use crate::annotate::{select_annotations, AnnotationSet};
use crate::config::SystemConfig;
use crate::migration::{MigrationEngine, MigrationScheme};
use crate::placement::PlacementPolicy;
use crate::system::{RunResult, SystemSim};

/// Builds the DDR-only profiling simulator without running it.
///
/// The `build_*` constructors are deterministic in their arguments, so a
/// simulator built twice from the same inputs is identical — which is what
/// lets a checkpoint ([`SystemSim::save_state`]) restore into a freshly
/// built instance and resume.
pub fn build_profile_sim(cfg: &SystemConfig, workload: &Workload) -> SystemSim {
    SystemSim::new(
        cfg.clone(),
        workload,
        PlacementPolicy::DdrOnly.name(),
        &HashSet::new(),
        HashSet::new(),
        None,
    )
}

/// Runs the workload on a DDR-only system and returns its page statistics
/// (the profiling pass that feeds every oracular placement — the paper's
/// Section 4.2 methodology).
pub fn profile_workload(cfg: &SystemConfig, workload: &Workload) -> RunResult {
    build_profile_sim(cfg, workload).run()
}

/// Builds the static-placement simulator without running it (see
/// [`build_profile_sim`] on why builders exist).
pub fn build_static_sim(
    cfg: &SystemConfig,
    workload: &Workload,
    policy: PlacementPolicy,
    profile: &StatsTable,
) -> SystemSim {
    let initial = policy.select(profile, cfg.hbm_capacity_pages as usize);
    SystemSim::new(
        cfg.clone(),
        workload,
        policy.name(),
        &initial,
        HashSet::new(),
        None,
    )
}

/// Runs a static placement chosen by `policy` from profiling statistics.
pub fn run_static(
    cfg: &SystemConfig,
    workload: &Workload,
    policy: PlacementPolicy,
    profile: &StatsTable,
) -> RunResult {
    build_static_sim(cfg, workload, policy, profile).run()
}

/// Runs a dynamic migration scheme.
///
/// Cold-start is eliminated as in the paper (Sections 6.1/6.2): the run
/// starts from the matching static oracular placement — top-hot for the
/// performance-focused scheme, hot-and-low-risk for the reliability-aware
/// ones — derived from `profile`.
pub fn run_migration(
    cfg: &SystemConfig,
    workload: &Workload,
    scheme: MigrationScheme,
    profile: &StatsTable,
) -> RunResult {
    build_migration_sim(cfg, workload, scheme, profile).run()
}

/// Builds the dynamic-migration simulator without running it (see
/// [`build_profile_sim`] on why builders exist).
pub fn build_migration_sim(
    cfg: &SystemConfig,
    workload: &Workload,
    scheme: MigrationScheme,
    profile: &StatsTable,
) -> SystemSim {
    let capacity = cfg.hbm_capacity_pages as usize;
    let initial = match scheme {
        MigrationScheme::PerfFc => PlacementPolicy::PerfFocused.select(profile, capacity),
        MigrationScheme::RelFc | MigrationScheme::CrossCounter => {
            // "Top hot and low-risk pages from our static oracular
            // placement" (Section 6.2); spare capacity is topped up with
            // the next-best Wr2-ranked pages so HBM does not start idle.
            let mut set = PlacementPolicy::Balanced.select(profile, capacity);
            if set.len() < capacity {
                let mut extra: Vec<_> = PlacementPolicy::Wr2Ratio
                    .select(profile, capacity)
                    .difference(&set)
                    .copied()
                    .collect();
                extra.sort();
                for p in extra {
                    if set.len() >= capacity {
                        break;
                    }
                    set.insert(p);
                }
            }
            set
        }
    };
    SystemSim::new(
        cfg.clone(),
        workload,
        scheme.name(),
        &initial,
        HashSet::new(),
        Some(MigrationEngine::new(scheme)),
    )
}

/// Runs the annotation-based placement of Section 7: profile-selected
/// structures are pinned in HBM, the remaining capacity is filled with the
/// hottest non-pinned pages, and no migration runs.
///
/// Returns the run result together with the annotation set (whose
/// [`AnnotationSet::count`] is the Figure 17 metric).
pub fn run_annotated(
    cfg: &SystemConfig,
    workload: &Workload,
    profile: &StatsTable,
) -> (RunResult, AnnotationSet) {
    let (sim, annotations) = build_annotated_sim(cfg, workload, profile);
    (sim.run(), annotations)
}

/// Builds the annotation-run simulator without running it (see
/// [`build_profile_sim`] on why builders exist).
pub fn build_annotated_sim(
    cfg: &SystemConfig,
    workload: &Workload,
    profile: &StatsTable,
) -> (SystemSim, AnnotationSet) {
    let capacity = cfg.hbm_capacity_pages as usize;
    let annotations = select_annotations(workload, profile, capacity, cfg.seed);
    let mut initial: HashSet<PageId> = annotations.pinned.clone();
    if initial.len() < capacity {
        // Fill spare capacity with the hottest non-pinned pages.
        let extra = PlacementPolicy::PerfFocused.select(profile, capacity);
        let mut extras: Vec<PageId> = extra.difference(&initial).copied().collect();
        extras.sort();
        for p in extras {
            if initial.len() >= capacity {
                break;
            }
            initial.insert(p);
        }
    }
    let sim = SystemSim::new(
        cfg.clone(),
        workload,
        "annotations",
        &initial,
        annotations.pinned.clone(),
        None,
    );
    (sim, annotations)
}

/// The paper's Section 7 closing suggestion, implemented as an extension:
/// annotation-pinned structures *plus* a reliability-aware migration
/// mechanism managing the remaining capacity. Pinned pages are immune to
/// migration (the ELF loader marks them), while the engine adapts the rest.
pub fn run_annotated_with_migration(
    cfg: &SystemConfig,
    workload: &Workload,
    scheme: MigrationScheme,
    profile: &StatsTable,
) -> (RunResult, AnnotationSet) {
    let (sim, annotations) = build_annotated_migration_sim(cfg, workload, scheme, profile);
    (sim.run(), annotations)
}

/// Builds the annotations-plus-migration simulator without running it (see
/// [`build_profile_sim`] on why builders exist).
pub fn build_annotated_migration_sim(
    cfg: &SystemConfig,
    workload: &Workload,
    scheme: MigrationScheme,
    profile: &StatsTable,
) -> (SystemSim, AnnotationSet) {
    let capacity = cfg.hbm_capacity_pages as usize;
    let annotations = select_annotations(workload, profile, capacity, cfg.seed);
    let mut initial: HashSet<PageId> = annotations.pinned.clone();
    if initial.len() < capacity {
        let mut extra: Vec<PageId> = PlacementPolicy::Balanced
            .select(profile, capacity)
            .difference(&initial)
            .copied()
            .collect();
        extra.sort();
        for p in extra {
            if initial.len() >= capacity {
                break;
            }
            initial.insert(p);
        }
    }
    let sim = SystemSim::new(
        cfg.clone(),
        workload,
        format!("annotations+{}", scheme.name()),
        &initial,
        annotations.pinned.clone(),
        Some(MigrationEngine::new(scheme)),
    );
    (sim, annotations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_trace::Benchmark;

    #[test]
    fn full_pipeline_smoke() {
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::Libquantum);
        let profile = profile_workload(&cfg, &wl);
        assert!(profile.table.pages().len() > 100);

        let perf = run_static(&cfg, &wl, PlacementPolicy::PerfFocused, &profile.table);
        assert!(
            perf.ipc > profile.ipc,
            "HBM placement should beat DDR-only ({} vs {})",
            perf.ipc,
            profile.ipc
        );
        assert!(perf.ser_fit >= profile.ser_fit);

        let (ann, set) = run_annotated(&cfg, &wl, &profile.table);
        assert!(set.count() >= 1);
        assert!(ann.ipc > 0.0);
    }

    #[test]
    fn annotations_plus_migration_extension_runs() {
        let cfg = SystemConfig::smoke_test();
        let wl = Workload::Homogeneous(Benchmark::CactusADM);
        let profile = profile_workload(&cfg, &wl);
        let (run, set) =
            run_annotated_with_migration(&cfg, &wl, MigrationScheme::CrossCounter, &profile.table);
        assert!(run.ipc > 0.0);
        // Pinned pages must still be in HBM-heavy use and immune: at least
        // the annotations were applied.
        assert!(set.count() >= 1);
        assert!(run.policy.contains("annotations+cross-counter"));
    }
}
