//! Reliability-aware data placement for heterogeneous memory architectures.
//!
//! This crate is the paper's primary contribution: given a system that
//! pairs fast, low-reliability die-stacked memory (HBM, SEC-DED) with
//! slower, high-reliability DDR (ChipKill), decide *which pages live
//! where* so that performance and soft-error rate are balanced.
//!
//! * [`placement`] — profile-guided static policies: performance-focused,
//!   reliability-focused, balanced, and the Wr / Wr² AVF-proxy heuristics
//!   (Sections 4.2-5.4).
//! * [`migration`] — dynamic mechanisms: performance-focused Full
//!   Counters, reliability-aware Full Counters, and the low-cost MEA +
//!   Cross-Counter design (Section 6).
//! * [`annotate`] — program-annotation-based pinning (Section 7).
//! * [`system`] / [`runner`] — the full-system simulator tying the trace
//!   generators, cache hierarchy, DRAM timing models, page map and AVF
//!   tracker together, plus one-call experiment entry points.
//! * [`hwcost`] — the Section 6.3/6.4 hardware-cost arithmetic at full
//!   (unscaled) capacity.
//!
//! # Quickstart
//!
//! ```no_run
//! use ramp_core::config::SystemConfig;
//! use ramp_core::placement::PlacementPolicy;
//! use ramp_core::runner::{profile_workload, run_static};
//! use ramp_trace::{Benchmark, Workload};
//!
//! let cfg = SystemConfig::smoke_test();
//! let wl = Workload::Homogeneous(Benchmark::Astar);
//! let profile = profile_workload(&cfg, &wl);
//! let wr2 = run_static(&cfg, &wl, PlacementPolicy::Wr2Ratio, &profile.table);
//! println!("IPC {:.3}, SER {:.2}x DDR-only", wr2.ipc, wr2.ser_vs_ddr_only());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod annotate;
pub mod config;
pub mod counters;
pub mod hwcost;
pub mod mea;
pub mod migration;
pub mod pagemap;
pub mod placement;
pub mod runner;
pub mod system;

pub use annotate::{select_annotations, AnnotationSet};
pub use config::SystemConfig;
pub use counters::FullCounters;
pub use mea::MeaTracker;
pub use migration::{MigrationEngine, MigrationScheme, Move};
pub use pagemap::PageMap;
pub use placement::PlacementPolicy;
pub use runner::{
    profile_workload, run_annotated, run_annotated_with_migration, run_migration, run_static,
};
pub use system::{RunHooks, RunResult, SystemSim, CHECKPOINT_KIND, CHECKPOINT_VERSION};
