//! The multicore cache hierarchy: private L1 data caches in front of a
//! shared L2, producing the filtered main-memory access stream.
//!
//! The paper filters its PinPlay traces through Moola so only main-memory
//! activity reaches Ramulator; this module plays the same role. The
//! hierarchy is non-inclusive, write-back and write-allocate with
//! write-validate (a store miss does not fetch the line from memory), so:
//!
//! * an L2 *read* miss emits one memory **fill read**;
//! * an L2 *dirty eviction* emits one memory **writeback write**;
//! * everything else stays on chip.

use ramp_sim::units::{AccessKind, LineAddr};

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use ramp_trace::MemEvent;

/// Configuration of the whole hierarchy (Table 1, scaled — see DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of cores (private L1 slices).
    pub cores: usize,
    /// Per-core L1 data cache geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's Table 1 hierarchy at 1/16 L2 scale: 16 cores, 16 KB
    /// 4-way private L1 D-caches, 1 MB 16-way shared L2.
    ///
    /// The L2 is scaled with the memory capacities so the cache:memory size
    /// ratio of the paper is preserved (DESIGN.md §2).
    pub fn table1_scaled() -> Self {
        HierarchyConfig {
            cores: 16,
            l1: CacheConfig::new(16 * 1024, 4, 64),
            l2: CacheConfig::new(1024 * 1024, 16, 64),
        }
    }
}

/// The multicore hierarchy.
///
/// ```
/// use ramp_cache::{Hierarchy, HierarchyConfig};
/// use ramp_sim::units::{AccessKind, LineAddr};
///
/// let mut h = Hierarchy::new(HierarchyConfig::table1_scaled());
/// let mut mem = Vec::new();
/// h.access(0, LineAddr(1234), AccessKind::Read, &mut mem);
/// assert_eq!(mem.len(), 1); // cold read miss -> one fill
/// mem.clear();
/// h.access(0, LineAddr(1234), AccessKind::Read, &mut mem);
/// assert!(mem.is_empty()); // now cached
/// ```
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.cores == 0`.
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores > 0, "need at least one core");
        Hierarchy {
            config,
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: SetAssocCache::new(config.l2),
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one CPU access for `core`, appending any main-memory
    /// events (fills and writebacks) to `mem_out`.
    ///
    /// Returns `true` if the access hit in L1 (used by the core model for
    /// zero-latency hits).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: usize,
        line: LineAddr,
        kind: AccessKind,
        mem_out: &mut Vec<MemEvent>,
    ) -> bool {
        let write = kind.is_write();
        let l1 = &mut self.l1[core];
        let r1 = l1.access(line, write);
        if r1.hit {
            return true;
        }
        // L1 victim writeback into L2 (write-validate: no fill on miss).
        if let Some((vline, true)) = r1.victim {
            let r2 = self.l2.access(vline, true);
            if let Some((l2v, true)) = r2.victim {
                mem_out.push(MemEvent::write(l2v, core));
            }
        }
        // Satisfy the L1 miss.
        if write {
            // Write-validate: L1 already allocated the line dirty; no fill.
            false
        } else {
            let r2 = self.l2.access(line, false);
            if !r2.hit {
                mem_out.push(MemEvent::read(line, core));
                if let Some((l2v, true)) = r2.victim {
                    mem_out.push(MemEvent::write(l2v, core));
                }
            }
            false
        }
    }

    /// Statistics for `core`'s L1.
    pub fn l1_stats(&self, core: usize) -> &CacheStats {
        self.l1[core].stats()
    }

    /// Statistics for the shared L2.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// Exports per-level telemetry into `reg`: `{prefix}.l1.core{i:02}`
    /// per core plus the shared `{prefix}.l2`. MPKI needs the committed
    /// instruction count and is exported by the system model instead.
    pub fn export_telemetry(&self, reg: &mut ramp_sim::telemetry::StatRegistry, prefix: &str) {
        let export = |reg: &mut ramp_sim::telemetry::StatRegistry, scope: &str, st: &CacheStats| {
            reg.counter_add(scope, "hits", st.hits);
            reg.counter_add(scope, "misses", st.misses);
            reg.counter_add(scope, "writebacks", st.dirty_evictions);
            reg.ratio_add(scope, "miss_ratio", st.misses, st.accesses());
        };
        for (i, l1) in self.l1.iter().enumerate() {
            export(reg, &format!("{prefix}.l1.core{i:02}"), l1.stats());
        }
        export(reg, &format!("{prefix}.l2"), self.l2.stats());
    }

    /// Serializes every cache's dynamic state into `w` (geometry is
    /// rebuilt from the config on restore).
    pub fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        w.u32(self.l1.len() as u32);
        for l1 in &self.l1 {
            l1.save_state(w);
        }
        self.l2.save_state(w);
    }

    /// Restores the state captured by [`Hierarchy::save_state`] into a
    /// hierarchy of identical configuration.
    pub fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        let n = r.seq_len(1)?;
        if n != self.l1.len() {
            return Err(ramp_sim::codec::CodecError::Malformed(
                "L1 cache count mismatch",
            ));
        }
        for l1 in &mut self.l1 {
            l1.restore_state(r)?;
        }
        self.l2.restore_state(r)
    }

    /// Flushes every dirty line in the hierarchy, emitting writebacks.
    ///
    /// Called at end of simulation so writeback-only data is fully
    /// accounted; the paper's trace windows end the same way.
    pub fn flush(&mut self, mem_out: &mut Vec<MemEvent>) {
        // Drain L1s into L2, then L2 to memory. Walk by probing all valid
        // lines via occupancy-preserving invalidation.
        for core in 0..self.config.cores {
            let lines = self.l1[core].valid_lines();
            for (line, dirty) in lines {
                self.l1[core].invalidate(line);
                if dirty {
                    let r2 = self.l2.access(line, true);
                    if let Some((l2v, true)) = r2.victim {
                        mem_out.push(MemEvent::write(l2v, core));
                    }
                }
            }
        }
        for (line, dirty) in self.l2.valid_lines() {
            self.l2.invalidate(line);
            if dirty {
                mem_out.push(MemEvent::write(line, 0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheConfig::new(256, 2, 64),  // 4 lines
            l2: CacheConfig::new(1024, 2, 64), // 16 lines
        })
    }

    #[test]
    fn read_miss_produces_single_fill() {
        let mut h = small();
        let mut out = Vec::new();
        assert!(!h.access(0, LineAddr(100), AccessKind::Read, &mut out));
        assert_eq!(out, vec![MemEvent::read(LineAddr(100), 0)]);
    }

    #[test]
    fn write_miss_produces_no_memory_traffic() {
        let mut h = small();
        let mut out = Vec::new();
        h.access(0, LineAddr(100), AccessKind::Write, &mut out);
        assert!(out.is_empty(), "write-validate must not fill");
    }

    #[test]
    fn l1_hit_is_silent() {
        let mut h = small();
        let mut out = Vec::new();
        h.access(0, LineAddr(7), AccessKind::Read, &mut out);
        out.clear();
        assert!(h.access(0, LineAddr(7), AccessKind::Read, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn dirty_data_eventually_written_back() {
        let mut h = small();
        let mut out = Vec::new();
        // Write a long stream: must overflow both L1 (4 lines) and L2
        // (16 lines) and produce writebacks.
        for i in 0..200 {
            h.access(0, LineAddr(i * 2), AccessKind::Write, &mut out);
        }
        let wbs = out.iter().filter(|e| e.kind == AccessKind::Write).count();
        assert!(wbs > 150, "expected many writebacks, got {wbs}");
        let fills = out.iter().filter(|e| e.kind == AccessKind::Read).count();
        assert_eq!(fills, 0, "write stream must not fill");
    }

    #[test]
    fn l2_shared_between_cores() {
        let mut h = small();
        let mut out = Vec::new();
        h.access(0, LineAddr(42), AccessKind::Read, &mut out);
        out.clear();
        // Core 1 misses its own L1 but should hit shared L2: no memory event.
        h.access(1, LineAddr(42), AccessKind::Read, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn flush_writes_back_all_dirty_lines() {
        let mut h = small();
        let mut out = Vec::new();
        h.access(0, LineAddr(1), AccessKind::Write, &mut out);
        h.access(0, LineAddr(2), AccessKind::Write, &mut out);
        assert!(out.is_empty());
        h.flush(&mut out);
        let wbs: Vec<_> = out
            .iter()
            .filter(|e| e.kind == AccessKind::Write)
            .map(|e| e.line)
            .collect();
        assert!(wbs.contains(&LineAddr(1)));
        assert!(wbs.contains(&LineAddr(2)));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = small();
        let mut out = Vec::new();
        h.access(0, LineAddr(5), AccessKind::Read, &mut out);
        h.access(0, LineAddr(5), AccessKind::Read, &mut out);
        assert_eq!(h.l1_stats(0).hits, 1);
        assert_eq!(h.l1_stats(0).misses, 1);
        assert_eq!(h.l2_stats().misses, 1);
    }

    #[test]
    fn telemetry_export_covers_every_level() {
        let mut h = small();
        let mut out = Vec::new();
        h.access(0, LineAddr(5), AccessKind::Read, &mut out);
        h.access(0, LineAddr(5), AccessKind::Read, &mut out);
        h.access(1, LineAddr(9), AccessKind::Read, &mut out);
        let mut reg = ramp_sim::telemetry::StatRegistry::new();
        h.export_telemetry(&mut reg, "cache");
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("cache.l1.core00", "hits").unwrap().as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("cache.l1.core01", "misses").unwrap().as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("cache.l2", "misses").unwrap().as_counter(),
            Some(2)
        );
        assert_eq!(
            snap.get("cache.l2", "miss_ratio").unwrap().as_ratio(),
            Some(1.0)
        );
    }
}
