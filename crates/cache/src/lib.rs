//! Multicore cache-hierarchy simulation for RAMP (Moola substitute).
//!
//! The paper filters PinPlay CPU traces through the Moola cache simulator so
//! that only main-memory activity reaches the DRAM model; this crate is that
//! filter. It provides a single set-associative write-back cache
//! ([`SetAssocCache`]) and a 16-core private-L1 / shared-L2 [`Hierarchy`]
//! whose output stream of [`ramp_trace::MemEvent`]s feeds the DRAM
//! controllers and the AVF tracker.
//!
//! # Example
//!
//! ```
//! use ramp_cache::{Hierarchy, HierarchyConfig};
//! use ramp_sim::units::{AccessKind, LineAddr};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::table1_scaled());
//! let mut mem = Vec::new();
//! h.access(3, LineAddr(99), AccessKind::Read, &mut mem);
//! assert_eq!(mem.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod hierarchy;

pub use cache::{AccessResult, CacheConfig, CacheStats, SetAssocCache};
pub use hierarchy::{Hierarchy, HierarchyConfig};
