//! A single set-associative, write-back, write-allocate cache.

use ramp_sim::units::LineAddr;

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (must match the global 64 B line).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a config and validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, sizes are inconsistent, or the
    /// number of sets is not a power of two.
    pub fn new(size_bytes: usize, assoc: usize, line_bytes: usize) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && line_bytes > 0);
        assert_eq!(
            size_bytes % (assoc * line_bytes),
            0,
            "size must be a multiple of assoc * line"
        );
        let sets = size_bytes / (assoc * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.assoc * self.line_bytes)
    }

    /// Total lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was already present.
    pub hit: bool,
    /// Line evicted to make room (misses only), with its dirty flag.
    pub victim: Option<(LineAddr, bool)>,
}

/// Hit/miss/writeback counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// `meta` bit: way holds a valid line.
const VALID: u8 = 1;
/// `meta` bit: the held line is dirty.
const DIRTY: u8 = 2;

/// A set-associative cache with true-LRU replacement.
///
/// The cache is write-back and write-allocate with a *write-validate*
/// policy: a store miss allocates the line dirty without requiring a fill
/// from the next level (the caller decides whether to model a fill; see
/// [`crate::hierarchy::Hierarchy`]). This matches streaming-store behaviour
/// and is what lets write-only structures generate writeback-only memory
/// traffic — the low-AVF population the paper's heuristics target.
///
/// ```
/// use ramp_cache::{CacheConfig, SetAssocCache};
/// use ramp_sim::units::LineAddr;
///
/// let mut c = SetAssocCache::new(CacheConfig::new(4096, 2, 64));
/// assert!(!c.access(LineAddr(1), false).hit);
/// assert!(c.access(LineAddr(1), false).hit);
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    // Way state as parallel arrays (sets * assoc, row-major by set): the
    // hit scan walks `assoc` consecutive tags in one or two cache lines
    // instead of striding over padded per-way structs.
    tags: Vec<u64>,
    lrus: Vec<u64>,
    meta: Vec<u8>,
    set_mask: u64,
    set_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let n = sets * config.assoc;
        SetAssocCache {
            config,
            tags: vec![0; n],
            lrus: vec![0; n],
            meta: vec![0; n],
            set_mask: sets as u64 - 1,
            set_shift: sets.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn index(&self, line: LineAddr) -> (usize, u64) {
        let set = (line.0 & self.set_mask) as usize;
        let tag = line.0 >> self.set_shift;
        (set, tag)
    }

    #[inline]
    fn line_of(&self, set: usize, tag: u64) -> LineAddr {
        LineAddr((tag << self.set_shift) | set as u64)
    }

    /// Checks for presence without updating LRU or statistics.
    pub fn probe(&self, line: LineAddr) -> bool {
        let (set, tag) = self.index(line);
        let base = set * self.config.assoc;
        (base..base + self.config.assoc).any(|i| self.meta[i] & VALID != 0 && self.tags[i] == tag)
    }

    /// Accesses `line`; allocates on miss (LRU victim), marking the line
    /// dirty when `write` is set.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessResult {
        self.tick += 1;
        let (set, tag) = self.index(line);
        let assoc = self.config.assoc;
        let base = set * assoc;

        let set_shift = self.set_shift;
        let tags = &mut self.tags[base..base + assoc];
        let lrus = &mut self.lrus[base..base + assoc];
        let meta = &mut self.meta[base..base + assoc];

        // Hit path.
        for i in 0..assoc {
            if meta[i] & VALID != 0 && tags[i] == tag {
                lrus[i] = self.tick;
                meta[i] |= u8::from(write) * DIRTY;
                self.stats.hits += 1;
                return AccessResult {
                    hit: true,
                    victim: None,
                };
            }
        }

        // Miss: pick an invalid way, else the LRU way.
        self.stats.misses += 1;
        let mut victim_idx = 0;
        let mut victim_lru = u64::MAX;
        let mut found_invalid = false;
        for i in 0..assoc {
            if meta[i] & VALID == 0 {
                victim_idx = i;
                found_invalid = true;
                break;
            }
            if lrus[i] < victim_lru {
                victim_lru = lrus[i];
                victim_idx = i;
            }
        }
        let victim = if found_invalid {
            None
        } else {
            let dirty = meta[victim_idx] & DIRTY != 0;
            if dirty {
                self.stats.dirty_evictions += 1;
            }
            Some((
                LineAddr((tags[victim_idx] << set_shift) | set as u64),
                dirty,
            ))
        };
        tags[victim_idx] = tag;
        lrus[victim_idx] = self.tick;
        meta[victim_idx] = VALID | u8::from(write) * DIRTY;
        AccessResult { hit: false, victim }
    }

    /// Invalidates `line` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let (set, tag) = self.index(line);
        let base = set * self.config.assoc;
        for i in base..base + self.config.assoc {
            if self.meta[i] & VALID != 0 && self.tags[i] == tag {
                self.meta[i] &= !VALID;
                return Some(self.meta[i] & DIRTY != 0);
            }
        }
        None
    }

    /// Number of currently-valid lines (test/diagnostic helper).
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m & VALID != 0).count()
    }

    /// Serializes the cache's dynamic state (ways, LRU tick, stats) into
    /// `w`. Geometry is not written: restore into a cache built with the
    /// same [`CacheConfig`].
    pub fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        w.u32(self.tags.len() as u32);
        for i in 0..self.tags.len() {
            w.u64(self.tags[i]);
            w.u64(self.lrus[i]);
            w.u8(u8::from(self.meta[i] & VALID != 0));
            w.u8(u8::from(self.meta[i] & DIRTY != 0));
        }
        w.u64(self.tick);
        w.u64(self.stats.hits);
        w.u64(self.stats.misses);
        w.u64(self.stats.dirty_evictions);
    }

    /// Restores the state captured by [`SetAssocCache::save_state`] into a
    /// cache of identical geometry.
    pub fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        let n = r.seq_len(18)?;
        if n != self.tags.len() {
            return Err(ramp_sim::codec::CodecError::Malformed(
                "cache way count mismatch",
            ));
        }
        for i in 0..n {
            self.tags[i] = r.u64()?;
            self.lrus[i] = r.u64()?;
            let valid = r.u8()? != 0;
            let dirty = r.u8()? != 0;
            self.meta[i] = u8::from(valid) * VALID | u8::from(dirty) * DIRTY;
        }
        self.tick = r.u64()?;
        self.stats.hits = r.u64()?;
        self.stats.misses = r.u64()?;
        self.stats.dirty_evictions = r.u64()?;
        Ok(())
    }

    /// Every valid line with its dirty flag (used to flush at end of run).
    pub fn valid_lines(&self) -> Vec<(LineAddr, bool)> {
        let assoc = self.config.assoc;
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, &m)| m & VALID != 0)
            .map(|(i, &m)| (self.line_of(i / assoc, self.tags[i]), m & DIRTY != 0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig::new(256, 2, 64))
    }

    fn line_in_set(set: u64, k: u64) -> LineAddr {
        // With 2 sets, lines with the same parity map to the same set.
        LineAddr(set + 2 * k)
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(16 * 1024, 4, 64);
        assert_eq!(c.sets(), 64);
        assert_eq!(c.lines(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panics() {
        CacheConfig::new(3 * 64 * 2, 2, 64);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        let l = LineAddr(4);
        assert!(!c.access(l, false).hit);
        assert!(c.access(l, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        let a = line_in_set(0, 0);
        let b = line_in_set(0, 1);
        let d = line_in_set(0, 2);
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a is now MRU
        let res = c.access(d, false); // must evict b
        assert_eq!(res.victim, Some((b, false)));
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        let a = line_in_set(1, 0);
        let b = line_in_set(1, 1);
        let d = line_in_set(1, 2);
        c.access(a, true); // dirty
        c.access(b, false);
        let res = c.access(d, false); // evicts a (LRU), dirty
        assert_eq!(res.victim, Some((a, true)));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_hit_sets_dirty() {
        let mut c = tiny();
        let a = line_in_set(0, 0);
        c.access(a, false);
        c.access(a, true);
        assert_eq!(c.invalidate(a), Some(true));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn victim_line_reconstruction_round_trips() {
        let mut c = SetAssocCache::new(CacheConfig::new(8 * 1024, 2, 64));
        let sets = c.config().sets() as u64;
        let l1 = LineAddr(7);
        let l2 = LineAddr(7 + sets);
        let l3 = LineAddr(7 + 2 * sets);
        c.access(l1, true);
        c.access(l2, false);
        let res = c.access(l3, false);
        assert_eq!(res.victim, Some((l1, true)));
    }

    #[test]
    fn probe_does_not_perturb_state() {
        let mut c = tiny();
        let a = line_in_set(0, 0);
        c.access(a, false);
        let before = *c.stats();
        assert!(c.probe(a));
        assert!(!c.probe(line_in_set(0, 9)));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn write_miss_allocates_dirty_without_fill() {
        // Write-validate: a store miss allocates the line dirty, so its
        // eventual eviction is a write-back even though it was never read.
        let mut c = tiny();
        let a = line_in_set(0, 0);
        let b = line_in_set(0, 1);
        let d = line_in_set(0, 2);
        assert!(!c.access(a, true).hit);
        c.access(b, false);
        c.access(b, false); // b MRU, a LRU
        let res = c.access(d, false);
        assert_eq!(
            res.victim,
            Some((a, true)),
            "write-validated line evicts dirty"
        );
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn valid_lines_reports_flush_set() {
        let mut c = tiny();
        let clean = line_in_set(0, 0);
        let dirty = line_in_set(1, 0);
        c.access(clean, false);
        c.access(dirty, true);
        let mut lines = c.valid_lines();
        lines.sort_by_key(|(l, _)| l.0);
        assert_eq!(lines, vec![(clean, false), (dirty, true)]);
        c.invalidate(dirty);
        assert_eq!(c.valid_lines(), vec![(clean, false)]);
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let mut c = tiny();
        let a = line_in_set(0, 0);
        let b = line_in_set(0, 1);
        let d = line_in_set(0, 2);
        c.access(a, false);
        c.access(b, false); // a is LRU
        assert!(c.probe(a)); // a probe must not promote a
        let res = c.access(d, false);
        assert_eq!(res.victim, Some((a, false)), "probe must not refresh LRU");
    }

    #[test]
    fn invalidated_way_reused_without_eviction() {
        let mut c = tiny();
        let a = line_in_set(0, 0);
        let b = line_in_set(0, 1);
        c.access(a, true);
        c.access(b, false);
        assert_eq!(c.invalidate(a), Some(true));
        // The set has a free (invalid) way again: no victim on the next miss.
        let res = c.access(line_in_set(0, 2), false);
        assert_eq!(res.victim, None);
        assert!(
            c.probe(b),
            "valid line must survive reuse of the invalid way"
        );
    }

    #[test]
    fn occupancy_tracks_valid_lines() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        c.access(LineAddr(0), false);
        c.access(LineAddr(1), false);
        assert_eq!(c.occupancy(), 2);
        c.invalidate(LineAddr(0));
        assert_eq!(c.occupancy(), 1);
    }
}
