//! ACE-interval tracking at cache-line granularity (Section 4.1).
//!
//! The AVF of a bit in memory is the fraction of execution time during
//! which flipping it would change program output. At memory-request
//! granularity (Figure 3 of the paper):
//!
//! * a **read** of a line at cycle *t* makes the interval since the line's
//!   previous memory access ACE (the value was live: the fill consumed it);
//! * a **write** at cycle *t* makes the preceding interval un-ACE (dead:
//!   the value was overwritten before being read).
//!
//! The tracker attributes each ACE interval to the memory (HBM or DDR) the
//! page resides in at the time of the read; migration intervals are much
//! longer than typical ACE intervals, so the attribution error is
//! second-order (DESIGN.md).

use std::collections::HashMap;

use ramp_dram::MemoryKind;
use ramp_sim::units::{AccessKind, Cycle, PageId, LINES_PER_PAGE};

/// Per-page tracking state.
#[derive(Debug)]
struct PageTrack {
    /// Last memory access per line (fill or writeback).
    last_access: Box<[u64; LINES_PER_PAGE]>,
    /// ACE cycles accumulated while resident in [HBM, DDR].
    ace: [u64; 2],
    reads: u64,
    writes: u64,
}

#[inline]
fn mem_index(kind: MemoryKind) -> usize {
    match kind {
        MemoryKind::Hbm => 0,
        MemoryKind::Ddr => 1,
    }
}

/// Final per-page statistics: the raw material of every placement policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PageStats {
    /// The page.
    pub page: PageId,
    /// Memory-level reads (fills).
    pub reads: u64,
    /// Memory-level writes (writebacks).
    pub writes: u64,
    /// ACE cycles accumulated while in HBM.
    pub ace_hbm: u64,
    /// ACE cycles accumulated while in DDR.
    pub ace_ddr: u64,
    /// Page AVF over the whole run, in `[0, 1]`.
    pub avf: f64,
}

impl PageStats {
    /// Raw access count ("hotness"): reads + writes.
    pub fn hotness(&self) -> u64 {
        self.reads + self.writes
    }

    /// The paper's Wr ratio heuristic: writes / reads (Section 5.4.1).
    /// Pages with zero reads use 1 as the denominator (maximally
    /// write-dominated).
    pub fn wr_ratio(&self) -> f64 {
        self.writes as f64 / self.reads.max(1) as f64
    }

    /// The paper's Wr² ratio: writes² / reads (Section 5.4.2) — the same
    /// AVF proxy with extra weight on absolute write traffic.
    pub fn wr2_ratio(&self) -> f64 {
        (self.writes as f64) * (self.writes as f64) / self.reads.max(1) as f64
    }

    /// AVF component accumulated in the given memory.
    pub fn avf_in(&self, kind: MemoryKind, total_cycles: u64) -> f64 {
        let ace = match kind {
            MemoryKind::Hbm => self.ace_hbm,
            MemoryKind::Ddr => self.ace_ddr,
        };
        if total_cycles == 0 {
            0.0
        } else {
            ace as f64 / (LINES_PER_PAGE as f64 * total_cycles as f64)
        }
    }
}

/// Tracks ACE intervals for every page touched during a run.
///
/// ```
/// use ramp_avf::AvfTracker;
/// use ramp_dram::MemoryKind;
/// use ramp_sim::units::{AccessKind, Cycle, PageId};
///
/// let mut t = AvfTracker::new(Cycle(0));
/// let p = PageId(7);
/// // Write at cycle 100 (interval 0..100 dead), read at 300 (100..300 ACE).
/// t.on_access(p, 0, AccessKind::Write, Cycle(100), MemoryKind::Ddr);
/// t.on_access(p, 0, AccessKind::Read, Cycle(300), MemoryKind::Ddr);
/// let stats = t.finish(Cycle(1000));
/// let s = stats.get(p).unwrap();
/// // 200 ACE cycles over 64 lines x 1000 cycles.
/// assert!((s.avf - 200.0 / 64_000.0).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct AvfTracker {
    pages: HashMap<PageId, PageTrack>,
    start: Cycle,
}

impl AvfTracker {
    /// Creates a tracker; `start` is the cycle memory contents become live
    /// (data loaded before the simulated window counts as written then).
    pub fn new(start: Cycle) -> Self {
        AvfTracker {
            pages: HashMap::new(),
            start,
        }
    }

    /// Records one memory-level access.
    ///
    /// # Panics
    ///
    /// Panics if `line_in_page >= 64` or `now` precedes the start cycle.
    pub fn on_access(
        &mut self,
        page: PageId,
        line_in_page: usize,
        kind: AccessKind,
        now: Cycle,
        resident_in: MemoryKind,
    ) {
        assert!(line_in_page < LINES_PER_PAGE, "line index out of page");
        assert!(now >= self.start, "access before tracker start");
        let start = self.start.0;
        let track = self.pages.entry(page).or_insert_with(|| PageTrack {
            last_access: Box::new([start; LINES_PER_PAGE]),
            ace: [0, 0],
            reads: 0,
            writes: 0,
        });
        let last = &mut track.last_access[line_in_page];
        match kind {
            AccessKind::Read => {
                let interval = now.0.saturating_sub(*last);
                track.ace[mem_index(resident_in)] += interval;
                track.reads += 1;
            }
            AccessKind::Write => {
                track.writes += 1;
            }
        }
        *last = now.0;
    }

    /// Number of pages touched so far.
    pub fn touched_pages(&self) -> usize {
        self.pages.len()
    }

    /// Serializes the tracker (sorted by page id so the byte stream is
    /// independent of `HashMap` iteration order).
    pub fn save_state(&self, w: &mut ramp_sim::codec::ByteWriter) {
        w.u64(self.start.0);
        let mut pages: Vec<(&PageId, &PageTrack)> = self.pages.iter().collect();
        pages.sort_by_key(|(p, _)| **p);
        w.u32(pages.len() as u32);
        for (page, t) in pages {
            w.u64(page.0);
            for &last in t.last_access.iter() {
                w.u64(last);
            }
            w.u64(t.ace[0]);
            w.u64(t.ace[1]);
            w.u64(t.reads);
            w.u64(t.writes);
        }
    }

    /// Restores the state captured by [`AvfTracker::save_state`], replacing
    /// the tracker's contents.
    pub fn restore_state(
        &mut self,
        r: &mut ramp_sim::codec::ByteReader,
    ) -> Result<(), ramp_sim::codec::CodecError> {
        self.start = Cycle(r.u64()?);
        let n = r.seq_len(8 + 8 * LINES_PER_PAGE + 32)?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let page = PageId(r.u64()?);
            let mut last_access = Box::new([0u64; LINES_PER_PAGE]);
            for last in last_access.iter_mut() {
                *last = r.u64()?;
            }
            let track = PageTrack {
                last_access,
                ace: [r.u64()?, r.u64()?],
                reads: r.u64()?,
                writes: r.u64()?,
            };
            pages.insert(page, track);
        }
        self.pages = pages;
        Ok(())
    }

    /// Finalizes tracking at `end` and produces the per-page statistics.
    ///
    /// The interval from each line's last access to `end` is un-ACE (the
    /// standard cooldown assumption: data not read again before the window
    /// closes does not count as vulnerable).
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the start cycle.
    pub fn finish(self, end: Cycle) -> StatsTable {
        assert!(end >= self.start, "end before start");
        let total = (end - self.start).0;
        let mut stats: Vec<PageStats> = self
            .pages
            .into_iter()
            .map(|(page, t)| {
                let ace_total = t.ace[0] + t.ace[1];
                PageStats {
                    page,
                    reads: t.reads,
                    writes: t.writes,
                    ace_hbm: t.ace[0],
                    ace_ddr: t.ace[1],
                    avf: if total == 0 {
                        0.0
                    } else {
                        ace_total as f64 / (LINES_PER_PAGE as f64 * total as f64)
                    },
                }
            })
            .collect();
        stats.sort_by_key(|s| s.page);
        StatsTable {
            stats,
            total_cycles: total,
        }
    }
}

/// The finished per-page statistics of one run.
#[derive(Clone, Debug)]
pub struct StatsTable {
    stats: Vec<PageStats>,
    total_cycles: u64,
}

impl StatsTable {
    /// Builds a table directly (used by tests and synthetic analyses).
    pub fn from_stats(stats: Vec<PageStats>, total_cycles: u64) -> Self {
        let mut stats = stats;
        stats.sort_by_key(|s| s.page);
        StatsTable {
            stats,
            total_cycles,
        }
    }

    /// All pages, sorted by page id.
    pub fn pages(&self) -> &[PageStats] {
        &self.stats
    }

    /// Run length in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Stats for one page, if it was touched.
    pub fn get(&self, page: PageId) -> Option<&PageStats> {
        self.stats
            .binary_search_by_key(&page, |s| s.page)
            .ok()
            .map(|i| &self.stats[i])
    }

    /// Extends the table with zero-stat entries for every footprint page
    /// that was never touched during the window (the paper's Figure 2/4
    /// statistics are over the *entire* memory footprint, where pages not
    /// accessed in the simulated window have zero hotness and zero AVF).
    pub fn include_untouched(mut self, footprint: impl IntoIterator<Item = PageId>) -> Self {
        use std::collections::HashSet;
        let have: HashSet<PageId> = self.stats.iter().map(|s| s.page).collect();
        for page in footprint {
            if !have.contains(&page) {
                self.stats.push(PageStats {
                    page,
                    reads: 0,
                    writes: 0,
                    ace_hbm: 0,
                    ace_ddr: 0,
                    avf: 0.0,
                });
            }
        }
        self.stats.sort_by_key(|s| s.page);
        self
    }

    /// Mean AVF over all pages in the table (Figure 2's per-workload
    /// metric; include the footprint via [`StatsTable::include_untouched`]
    /// first to match the paper's whole-footprint denominator).
    pub fn mean_avf(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats.iter().map(|s| s.avf).sum::<f64>() / self.stats.len() as f64
    }

    /// Mean hotness over all touched pages.
    pub fn mean_hotness(&self) -> f64 {
        if self.stats.is_empty() {
            return 0.0;
        }
        self.stats.iter().map(|s| s.hotness() as f64).sum::<f64>() / self.stats.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: MemoryKind = MemoryKind::Ddr;
    const H: MemoryKind = MemoryKind::Hbm;

    fn tracker() -> AvfTracker {
        AvfTracker::new(Cycle(0))
    }

    #[test]
    fn read_after_write_is_ace() {
        let mut t = tracker();
        let p = PageId(1);
        t.on_access(p, 3, AccessKind::Write, Cycle(100), D);
        t.on_access(p, 3, AccessKind::Read, Cycle(250), D);
        let s = t.finish(Cycle(1000));
        let ps = s.get(p).unwrap();
        assert_eq!(ps.ace_ddr, 150);
        assert_eq!(ps.ace_hbm, 0);
        assert_eq!(ps.reads, 1);
        assert_eq!(ps.writes, 1);
    }

    #[test]
    fn write_after_write_is_dead_interval() {
        // Figure 3(b): particle strike between two writes is masked.
        let mut t = tracker();
        let p = PageId(2);
        t.on_access(p, 0, AccessKind::Write, Cycle(10), D);
        t.on_access(p, 0, AccessKind::Write, Cycle(500), D);
        let s = t.finish(Cycle(1000));
        assert_eq!(s.get(p).unwrap().avf, 0.0);
    }

    #[test]
    fn same_hotness_different_avf() {
        // Figure 3(c)/(d): equal access counts, divergent AVF.
        let mut t = tracker();
        let (pa, pb) = (PageId(3), PageId(4));
        // Page A: W at 0, R at 900 -> 900 ACE cycles on one line.
        t.on_access(pa, 0, AccessKind::Write, Cycle(0), D);
        t.on_access(pa, 0, AccessKind::Read, Cycle(900), D);
        // Page B: R at 100 (100 ACE), W at 900 -> 100 ACE cycles.
        t.on_access(pb, 0, AccessKind::Read, Cycle(100), D);
        t.on_access(pb, 0, AccessKind::Write, Cycle(900), D);
        let s = t.finish(Cycle(1000));
        let (a, b) = (s.get(pa).unwrap(), s.get(pb).unwrap());
        assert_eq!(a.hotness(), b.hotness());
        assert!(a.avf > b.avf * 5.0);
    }

    #[test]
    fn first_read_counts_from_start() {
        // Data loaded before the window is live from the start cycle.
        let mut t = AvfTracker::new(Cycle(1000));
        let p = PageId(5);
        t.on_access(p, 0, AccessKind::Read, Cycle(1600), D);
        let s = t.finish(Cycle(2000));
        assert_eq!(s.get(p).unwrap().ace_ddr, 600);
    }

    #[test]
    fn residency_attribution_splits_ace() {
        let mut t = tracker();
        let p = PageId(6);
        t.on_access(p, 0, AccessKind::Write, Cycle(0), D);
        t.on_access(p, 0, AccessKind::Read, Cycle(100), D); // 100 in DDR
        t.on_access(p, 0, AccessKind::Read, Cycle(300), H); // 200 in HBM
        let s = t.finish(Cycle(400));
        let ps = s.get(p).unwrap();
        assert_eq!(ps.ace_ddr, 100);
        assert_eq!(ps.ace_hbm, 200);
        let tot = s.total_cycles();
        assert!((ps.avf_in(H, tot) - 200.0 / (64.0 * 400.0)).abs() < 1e-12);
    }

    #[test]
    fn avf_bounded_by_one() {
        let mut t = tracker();
        let p = PageId(7);
        // Read every line at the last cycle: maximal ACE.
        for l in 0..LINES_PER_PAGE {
            t.on_access(p, l, AccessKind::Read, Cycle(1000), D);
        }
        let s = t.finish(Cycle(1000));
        let a = s.get(p).unwrap().avf;
        assert!(a <= 1.0 + 1e-12, "avf {a} exceeds 1");
        assert!(a > 0.99);
    }

    #[test]
    fn wr_ratio_heuristics() {
        let s = PageStats {
            page: PageId(0),
            reads: 4,
            writes: 8,
            ace_hbm: 0,
            ace_ddr: 0,
            avf: 0.0,
        };
        assert_eq!(s.wr_ratio(), 2.0);
        assert_eq!(s.wr2_ratio(), 16.0);
        let w_only = PageStats {
            reads: 0,
            writes: 5,
            ..s
        };
        assert_eq!(w_only.wr_ratio(), 5.0);
    }

    #[test]
    fn table_means() {
        let mut t = tracker();
        t.on_access(PageId(0), 0, AccessKind::Read, Cycle(500), D);
        t.on_access(PageId(1), 0, AccessKind::Write, Cycle(500), D);
        let s = t.finish(Cycle(1000));
        assert_eq!(s.pages().len(), 2);
        assert!(s.mean_avf() > 0.0);
        assert_eq!(s.mean_hotness(), 1.0);
        assert!(s.get(PageId(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn line_out_of_range_panics() {
        tracker().on_access(PageId(0), 64, AccessKind::Read, Cycle(0), D);
    }
}
