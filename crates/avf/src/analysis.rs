//! Hotness-risk analysis: the quadrant categorization of Section 4.2 and
//! the correlation measurements of Figures 6 and 9.

use ramp_sim::stats::{pearson, rank_descending};
use ramp_sim::units::PageId;

use crate::tracker::{PageStats, StatsTable};

/// The four hotness-risk quadrants of Figure 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// Above mean hotness, above mean AVF.
    HotHighRisk,
    /// Above mean hotness, below mean AVF — the placement opportunity.
    HotLowRisk,
    /// Below mean hotness, above mean AVF.
    ColdHighRisk,
    /// Below mean hotness, below mean AVF.
    ColdLowRisk,
}

impl std::fmt::Display for Quadrant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Quadrant::HotHighRisk => "hot & high-risk",
            Quadrant::HotLowRisk => "hot & low-risk",
            Quadrant::ColdHighRisk => "cold & high-risk",
            Quadrant::ColdLowRisk => "cold & low-risk",
        };
        f.write_str(s)
    }
}

/// Quadrant split of a workload's footprint around its mean hotness and
/// mean AVF (the horizontal/vertical lines of Figure 4).
#[derive(Clone, Debug)]
pub struct QuadrantAnalysis {
    /// Mean hotness threshold used.
    pub mean_hotness: f64,
    /// Mean AVF threshold used.
    pub mean_avf: f64,
    counts: [u64; 4],
    total: u64,
}

impl QuadrantAnalysis {
    /// Splits `table` around its mean hotness and mean AVF.
    pub fn new(table: &StatsTable) -> Self {
        let mean_hotness = table.mean_hotness();
        let mean_avf = table.mean_avf();
        let mut counts = [0u64; 4];
        for s in table.pages() {
            counts[Self::index(Self::classify_with(s, mean_hotness, mean_avf))] += 1;
        }
        QuadrantAnalysis {
            mean_hotness,
            mean_avf,
            counts,
            total: table.pages().len() as u64,
        }
    }

    fn index(q: Quadrant) -> usize {
        match q {
            Quadrant::HotHighRisk => 0,
            Quadrant::HotLowRisk => 1,
            Quadrant::ColdHighRisk => 2,
            Quadrant::ColdLowRisk => 3,
        }
    }

    fn classify_with(s: &PageStats, mean_hotness: f64, mean_avf: f64) -> Quadrant {
        let hot = s.hotness() as f64 > mean_hotness;
        let high_risk = s.avf > mean_avf;
        match (hot, high_risk) {
            (true, true) => Quadrant::HotHighRisk,
            (true, false) => Quadrant::HotLowRisk,
            (false, true) => Quadrant::ColdHighRisk,
            (false, false) => Quadrant::ColdLowRisk,
        }
    }

    /// Which quadrant a page falls into under this split.
    pub fn classify(&self, s: &PageStats) -> Quadrant {
        Self::classify_with(s, self.mean_hotness, self.mean_avf)
    }

    /// Page count in a quadrant.
    pub fn count(&self, q: Quadrant) -> u64 {
        self.counts[Self::index(q)]
    }

    /// Fraction of the footprint in a quadrant (Figure 4's percentages;
    /// the paper reports 9 %-39 % for hot & low-risk).
    pub fn fraction(&self, q: Quadrant) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(q) as f64 / self.total as f64
        }
    }

    /// Total pages analyzed.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Pages of `table` sorted by descending hotness (ties by page id).
pub fn hottest_pages(table: &StatsTable) -> Vec<&PageStats> {
    let hot: Vec<f64> = table.pages().iter().map(|s| s.hotness() as f64).collect();
    rank_descending(&hot)
        .into_iter()
        .map(|i| &table.pages()[i])
        .collect()
}

/// Pearson correlation between page hotness and AVF over the whole
/// footprint (Figure 6 reports ρ ≈ 0.08 for mix1).
pub fn hotness_avf_correlation(table: &StatsTable) -> Option<f64> {
    let hot: Vec<f64> = table.pages().iter().map(|s| s.hotness() as f64).collect();
    let avf: Vec<f64> = table.pages().iter().map(|s| s.avf).collect();
    pearson(&hot, &avf)
}

/// Pearson correlation between write ratio and AVF (Figure 9a reports
/// ρ ≈ -0.32), measured over the `top_n` hottest pages as in the paper.
pub fn writeratio_avf_correlation(table: &StatsTable, top_n: usize) -> Option<f64> {
    let pages = hottest_pages(table);
    let take = pages.len().min(top_n);
    let wr: Vec<f64> = pages[..take].iter().map(|s| s.wr_ratio()).collect();
    let avf: Vec<f64> = pages[..take].iter().map(|s| s.avf).collect();
    pearson(&wr, &avf)
}

/// The page ids of the `n` hottest pages.
pub fn top_hot_page_ids(table: &StatsTable, n: usize) -> Vec<PageId> {
    hottest_pages(table)
        .into_iter()
        .take(n)
        .map(|s| s.page)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::PageStats;

    fn page(id: u64, reads: u64, writes: u64, avf: f64) -> PageStats {
        PageStats {
            page: PageId(id),
            reads,
            writes,
            ace_hbm: 0,
            ace_ddr: 0,
            avf,
        }
    }

    fn table() -> StatsTable {
        StatsTable::from_stats(
            vec![
                page(0, 100, 0, 0.9),  // hot & high
                page(1, 0, 100, 0.05), // hot & low
                page(2, 2, 0, 0.8),    // cold & high
                page(3, 1, 1, 0.01),   // cold & low
            ],
            1000,
        )
    }

    #[test]
    fn quadrants_classified_around_means() {
        let t = table();
        let q = QuadrantAnalysis::new(&t);
        assert_eq!(q.total(), 4);
        for quad in [
            Quadrant::HotHighRisk,
            Quadrant::HotLowRisk,
            Quadrant::ColdHighRisk,
            Quadrant::ColdLowRisk,
        ] {
            assert_eq!(q.count(quad), 1, "{quad}");
            assert!((q.fraction(quad) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn hottest_pages_sorted() {
        let t = table();
        let hot = hottest_pages(&t);
        assert_eq!(hot[0].page, PageId(0));
        assert_eq!(hot[1].page, PageId(1));
        assert_eq!(hot[3].page, PageId(3));
    }

    #[test]
    fn correlations_have_expected_sign() {
        // Build a population where write ratio anti-correlates with AVF.
        let stats: Vec<PageStats> = (0..80)
            .map(|i| {
                let writes = i;
                let reads = 100 - i;
                let avf = 0.9 * (reads as f64 / 100.0);
                page(i, reads, writes, avf)
            })
            .collect();
        let t = StatsTable::from_stats(stats, 1000);
        let rho = writeratio_avf_correlation(&t, 100).unwrap();
        assert!(rho < -0.3, "expected negative correlation, got {rho}");
    }

    #[test]
    fn top_hot_ids() {
        let t = table();
        assert_eq!(top_hot_page_ids(&t, 2), vec![PageId(0), PageId(1)]);
        assert_eq!(top_hot_page_ids(&t, 99).len(), 4);
    }

    #[test]
    fn empty_table_is_safe() {
        let t = StatsTable::from_stats(vec![], 100);
        let q = QuadrantAnalysis::new(&t);
        assert_eq!(q.total(), 0);
        assert_eq!(q.fraction(Quadrant::HotLowRisk), 0.0);
        assert!(hotness_avf_correlation(&t).is_none());
    }
}
