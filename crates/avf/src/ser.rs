//! The soft-error-rate model: `SER = FIT × AVF` (Equation 2).
//!
//! Each page contributes `FIT_page(memory) × AVF_page(memory)` for the time
//! it was resident in each memory; the system SER is the sum over pages.
//! FIT rates come from the FaultSim Monte Carlo (uncorrected-error FIT per
//! GiB per memory); the defaults below are the calibrated outputs of
//! `cargo run -p ramp-bench --bin faultsim_calibration` recorded in
//! EXPERIMENTS.md.

use ramp_dram::MemoryKind;
use ramp_sim::units::PAGE_SIZE;

use crate::tracker::StatsTable;

/// Uncorrected-error FIT rates per GiB for the two memories.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SerModel {
    /// HBM (SEC-DED, die-stacked) uncorrected FIT per GiB.
    pub fit_hbm_per_gb: f64,
    /// DDR (ChipKill) uncorrected FIT per GiB.
    pub fit_ddr_per_gb: f64,
}

impl Default for SerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl SerModel {
    /// The calibrated model used by all experiments.
    ///
    /// The HBM value is the FaultSim Monte-Carlo estimate for the Table 1
    /// stack (SEC-DED, 2.5x density, TSV mode). The DDR value includes the
    /// simulated double-fault ChipKill DUEs plus the residual-uncorrected
    /// floor discussed in EXPERIMENTS.md (mis-serviced faults that symbol
    /// correction cannot see), landing the HBM:DDR uncorrected-FIT ratio
    /// near 10^3 — the regime the paper's 287x Figure 5 result implies.
    pub fn calibrated() -> Self {
        SerModel {
            fit_hbm_per_gb: 50.0,
            fit_ddr_per_gb: 0.05,
        }
    }

    /// Builds a model from two FaultSim outcomes.
    pub fn from_faultsim(
        hbm: &ramp_faultsim::RasOutcome,
        ddr: &ramp_faultsim::RasOutcome,
        ddr_floor_fit_per_gb: f64,
    ) -> Self {
        SerModel {
            fit_hbm_per_gb: hbm.fit_uncorrected_per_gb(),
            fit_ddr_per_gb: ddr.fit_uncorrected_per_gb() + ddr_floor_fit_per_gb,
        }
    }

    /// Uncorrected FIT of a single 4 KiB page resident in `kind`.
    pub fn fit_per_page(&self, kind: MemoryKind) -> f64 {
        let per_gb = match kind {
            MemoryKind::Hbm => self.fit_hbm_per_gb,
            MemoryKind::Ddr => self.fit_ddr_per_gb,
        };
        per_gb * PAGE_SIZE as f64 / (1u64 << 30) as f64
    }

    /// System SER (FIT) for a finished run: Σ_pages Σ_mem FIT × AVF.
    pub fn system_ser(&self, table: &StatsTable) -> f64 {
        let total = table.total_cycles();
        table
            .pages()
            .iter()
            .map(|s| {
                self.fit_per_page(MemoryKind::Hbm) * s.avf_in(MemoryKind::Hbm, total)
                    + self.fit_per_page(MemoryKind::Ddr) * s.avf_in(MemoryKind::Ddr, total)
            })
            .sum()
    }

    /// SER of the same run if every page had lived in DDR the whole time
    /// (the "only DDRx memory" baseline of Figures 5 and 12).
    pub fn ddr_only_ser(&self, table: &StatsTable) -> f64 {
        let total = table.total_cycles();
        table
            .pages()
            .iter()
            .map(|s| {
                self.fit_per_page(MemoryKind::Ddr)
                    * (s.avf_in(MemoryKind::Hbm, total) + s.avf_in(MemoryKind::Ddr, total))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::PageStats;
    use ramp_sim::units::PageId;

    fn table_split(ace_hbm: u64, ace_ddr: u64) -> StatsTable {
        StatsTable::from_stats(
            vec![PageStats {
                page: PageId(0),
                reads: 1,
                writes: 0,
                ace_hbm,
                ace_ddr,
                avf: (ace_hbm + ace_ddr) as f64 / (64.0 * 1000.0),
            }],
            1000,
        )
    }

    #[test]
    fn hbm_residency_raises_ser() {
        let m = SerModel::calibrated();
        let in_ddr = m.system_ser(&table_split(0, 64_000));
        let in_hbm = m.system_ser(&table_split(64_000, 0));
        assert!(in_hbm > in_ddr * 100.0);
        // Page fully ACE in DDR == the DDR-only baseline.
        assert!((in_ddr - m.ddr_only_ser(&table_split(0, 64_000))).abs() < 1e-18);
    }

    #[test]
    fn ser_scales_with_avf() {
        let m = SerModel::calibrated();
        let half = m.system_ser(&table_split(32_000, 0));
        let full = m.system_ser(&table_split(64_000, 0));
        assert!((full / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fit_per_page_is_tiny_fraction_of_per_gb() {
        let m = SerModel::calibrated();
        let pages_per_gb = (1u64 << 30) as f64 / 4096.0;
        let total = m.fit_per_page(MemoryKind::Hbm) * pages_per_gb;
        assert!((total - m.fit_hbm_per_gb).abs() < 1e-9);
    }

    #[test]
    fn calibrated_ratio_near_thousand() {
        let m = SerModel::calibrated();
        let r = m.fit_hbm_per_gb / m.fit_ddr_per_gb;
        assert!((500.0..5000.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn from_faultsim_applies_floor() {
        let hbm = ramp_faultsim::RasOutcome {
            trials: 10,
            detected_ue: 1,
            mission_hours: 1e9,
            capacity_per_rank_gb: 1.0,
            ..Default::default()
        };
        let ddr = ramp_faultsim::RasOutcome {
            trials: 10,
            mission_hours: 1e9,
            capacity_per_rank_gb: 1.0,
            ..Default::default()
        };
        let m = SerModel::from_faultsim(&hbm, &ddr, 0.01);
        assert!((m.fit_hbm_per_gb - 0.1).abs() < 1e-12);
        assert!((m.fit_ddr_per_gb - 0.01).abs() < 1e-12);
    }
}
