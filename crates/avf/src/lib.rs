//! Architectural Vulnerability Factor (AVF) analysis for memory pages.
//!
//! Implements the paper's Section 4 machinery: cache-line-granularity ACE
//! interval tracking ([`tracker::AvfTracker`]), page-level aggregation into
//! hotness/write-ratio/AVF statistics, the hotness-risk quadrant analysis
//! of Figure 4 ([`analysis::QuadrantAnalysis`]), and the `SER = FIT x AVF`
//! model of Equation 2 ([`ser::SerModel`]) fed by the FaultSim Monte-Carlo
//! results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod ser;
pub mod tracker;

pub use analysis::{
    hotness_avf_correlation, hottest_pages, top_hot_page_ids, writeratio_avf_correlation, Quadrant,
    QuadrantAnalysis,
};
pub use ser::SerModel;
pub use tracker::{AvfTracker, PageStats, StatsTable};
