//! Synthetic workload and memory-trace generation for RAMP.
//!
//! The paper drives its simulator with PinPlay/SimPoint traces of SPEC
//! CPU2006 and DoE proxy applications. Those traces are not redistributable,
//! so this crate provides deterministic synthetic stand-ins (see DESIGN.md's
//! substitution table): each benchmark is modeled as a set of named
//! data-structure [`region::RegionSpec`]s whose access patterns reproduce the
//! page-level hotness, write-ratio and AVF characteristics the paper reports.
//!
//! # Example
//!
//! ```
//! use ramp_trace::{Workload, MixId};
//!
//! let wl = Workload::Mix(MixId::Mix1);
//! let mut cores = wl.build_cores(42, 1_000_000);
//! assert_eq!(cores.len(), 16);
//! let record = cores[0].next().unwrap();
//! assert!(record.instructions() >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod io;
pub mod mix;
pub mod profile;
pub mod record;
pub mod region;

pub use gen::InstanceGen;
pub use mix::{MixId, Workload, CORES};
pub use profile::{BenchProfile, Benchmark};
pub use record::{MemEvent, TraceRecord};
pub use region::{Pattern, Phase, RegionSpec};
