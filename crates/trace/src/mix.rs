//! Workloads: homogeneous 16-copy runs and the five datacenter mixes of
//! Table 2.

use crate::gen::InstanceGen;
use crate::profile::Benchmark;

/// Number of cores in the evaluated system (Table 1).
pub const CORES: usize = 16;

/// One of the five mixed workloads of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum MixId {
    Mix1,
    Mix2,
    Mix3,
    Mix4,
    Mix5,
}

impl MixId {
    /// All five mixes.
    pub const ALL: [MixId; 5] = [
        MixId::Mix1,
        MixId::Mix2,
        MixId::Mix3,
        MixId::Mix4,
        MixId::Mix5,
    ];

    /// The mix's display name.
    pub fn name(self) -> &'static str {
        match self {
            MixId::Mix1 => "mix1",
            MixId::Mix2 => "mix2",
            MixId::Mix3 => "mix3",
            MixId::Mix4 => "mix4",
            MixId::Mix5 => "mix5",
        }
    }

    /// `(benchmark, copies)` pairs exactly as listed in Table 2.
    pub fn composition(self) -> &'static [(Benchmark, usize)] {
        use Benchmark::*;
        match self {
            MixId::Mix1 => &[
                (Mcf, 3),
                (Lbm, 2),
                (Milc, 2),
                (Omnetpp, 1),
                (Astar, 2),
                (Sphinx, 1),
                (Soplex, 2),
                (Libquantum, 2),
                (Gcc, 1),
            ],
            MixId::Mix2 => &[
                (Mcf, 2),
                (Lbm, 3),
                (Soplex, 3),
                (DealII, 3),
                (GemsFDTD, 2),
                (Bzip, 1),
                (CactusADM, 2),
            ],
            MixId::Mix3 => &[
                (Omnetpp, 2),
                (Astar, 1),
                (Sphinx, 2),
                (DealII, 1),
                (Libquantum, 1),
                (Leslie3d, 2),
                (Gcc, 2),
                (GemsFDTD, 2),
                (Bzip, 1),
                (CactusADM, 2),
            ],
            MixId::Mix4 => &[
                (Mcf, 1),
                (Lbm, 1),
                (Milc, 1),
                (Soplex, 3),
                (DealII, 1),
                (Libquantum, 3),
                (Leslie3d, 1),
                (Gcc, 1),
                (GemsFDTD, 1),
                (Bzip, 2),
                (CactusADM, 1),
            ],
            MixId::Mix5 => &[
                (DealII, 3),
                (Leslie3d, 3),
                (GemsFDTD, 1),
                (Bzip, 3),
                (Bwaves, 1),
                (CactusADM, 5),
            ],
        }
    }

    /// The 16 per-core benchmark assignments.
    pub fn assignments(self) -> Vec<Benchmark> {
        let mut v = Vec::with_capacity(CORES);
        for &(b, n) in self.composition() {
            for _ in 0..n {
                v.push(b);
            }
        }
        v
    }
}

impl std::fmt::Display for MixId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A 16-core workload: either 16 copies of one benchmark or a Table 2 mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 16 independent copies of one benchmark (no page sharing).
    Homogeneous(Benchmark),
    /// One of the five datacenter mixes.
    Mix(MixId),
}

impl Workload {
    /// The nine homogeneous workloads the paper evaluates (seven SPEC plus
    /// the two DoE proxy apps).
    pub const HOMOGENEOUS: [Workload; 9] = [
        Workload::Homogeneous(Benchmark::Astar),
        Workload::Homogeneous(Benchmark::CactusADM),
        Workload::Homogeneous(Benchmark::Lbm),
        Workload::Homogeneous(Benchmark::Mcf),
        Workload::Homogeneous(Benchmark::Milc),
        Workload::Homogeneous(Benchmark::Soplex),
        Workload::Homogeneous(Benchmark::Libquantum),
        Workload::Homogeneous(Benchmark::XSBench),
        Workload::Homogeneous(Benchmark::Lulesh),
    ];

    /// All 14 evaluated workloads: 9 homogeneous + 5 mixes.
    pub fn all() -> Vec<Workload> {
        let mut v: Vec<Workload> = Self::HOMOGENEOUS.to_vec();
        v.extend(MixId::ALL.into_iter().map(Workload::Mix));
        v
    }

    /// The workload's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Homogeneous(b) => b.name(),
            Workload::Mix(m) => m.name(),
        }
    }

    /// Parses a workload name (benchmark or `mixN`).
    pub fn from_name(name: &str) -> Option<Workload> {
        if let Some(b) = Benchmark::from_name(name) {
            return Some(Workload::Homogeneous(b));
        }
        MixId::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(name))
            .map(Workload::Mix)
    }

    /// Per-core benchmark assignments (always 16 entries).
    pub fn assignments(&self) -> Vec<Benchmark> {
        match self {
            Workload::Homogeneous(b) => vec![*b; CORES],
            Workload::Mix(m) => m.assignments(),
        }
    }

    /// The distinct benchmarks participating in this workload.
    pub fn distinct_benchmarks(&self) -> Vec<Benchmark> {
        let mut v = self.assignments();
        v.sort();
        v.dedup();
        v
    }

    /// Builds the 16 per-core trace generators.
    ///
    /// `seed` makes the whole workload deterministic; `horizon` is the
    /// per-core instruction budget (used for phase progress).
    pub fn build_cores(&self, seed: u64, horizon: u64) -> Vec<InstanceGen> {
        self.assignments()
            .into_iter()
            .enumerate()
            .map(|(core, b)| InstanceGen::new(b.profile(), core, seed, horizon))
            .collect()
    }

    /// Total footprint over all 16 instances, in pages.
    pub fn footprint_pages(&self) -> u64 {
        self.assignments()
            .iter()
            .map(|b| b.profile().footprint_pages())
            .sum()
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mix_has_sixteen_cores() {
        for m in MixId::ALL {
            assert_eq!(m.assignments().len(), CORES, "{m} is not 16 cores");
        }
    }

    #[test]
    fn mix1_matches_table2() {
        let a = MixId::Mix1.assignments();
        let mcf = a.iter().filter(|&&b| b == Benchmark::Mcf).count();
        let astar = a.iter().filter(|&&b| b == Benchmark::Astar).count();
        assert_eq!(mcf, 3);
        assert_eq!(astar, 2);
    }

    #[test]
    fn fourteen_workloads_total() {
        let all = Workload::all();
        assert_eq!(all.len(), 14);
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn build_cores_is_deterministic_and_disjoint() {
        let w = Workload::Mix(MixId::Mix1);
        let mut cores = w.build_cores(1234, 1_000_000);
        assert_eq!(cores.len(), CORES);
        // Address spaces disjoint across cores.
        let bases: Vec<_> = cores.iter().map(|c| c.base_page().index()).collect();
        for i in 1..bases.len() {
            assert!(bases[i] > bases[i - 1]);
        }
        let r1 = cores[0].next().unwrap();
        let mut cores2 = w.build_cores(1234, 1_000_000);
        assert_eq!(cores2[0].next().unwrap(), r1);
    }

    #[test]
    fn workload_names_round_trip() {
        for w in Workload::all() {
            assert_eq!(Workload::from_name(w.name()), Some(w));
        }
        assert!(Workload::from_name("mix9").is_none());
    }

    #[test]
    fn mix_footprints_are_plausible() {
        for m in MixId::ALL {
            let fp = Workload::Mix(m).footprint_pages();
            // 16 instances of ~700-1600 pages each.
            assert!(fp > 8_000 && fp < 40_000, "{m} footprint {fp}");
        }
    }

    #[test]
    fn distinct_benchmarks_mix1() {
        let d = Workload::Mix(MixId::Mix1).distinct_benchmarks();
        assert_eq!(d.len(), 9);
    }
}
