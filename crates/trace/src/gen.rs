//! The per-core trace generator.
//!
//! An [`InstanceGen`] replays one benchmark instance: an infinite,
//! deterministic stream of [`TraceRecord`]s driven by the benchmark's
//! [`RegionSpec`]s. Sixteen instances (one per core) make up a workload.

use ramp_sim::codec::{ByteReader, ByteWriter, CodecError};
use ramp_sim::rng::SimRng;
use ramp_sim::units::{AccessKind, Addr, PageId, LINE_SIZE, PAGE_SIZE};

use crate::profile::BenchProfile;
use crate::record::TraceRecord;
use crate::region::{RegionSpec, RegionState};

/// How often (in generated accesses) phase-dependent region weights are
/// refreshed. Phases change slowly relative to this.
const WEIGHT_REFRESH: u64 = 1024;

/// A deterministic generator for one benchmark instance on one core.
///
/// The generator is an infinite iterator; the system simulator drains it
/// until the core reaches its instruction budget.
///
/// ```
/// use ramp_trace::{Benchmark, InstanceGen};
/// let mut gen = InstanceGen::new(Benchmark::Astar.profile(), 0, 42, 1_000_000);
/// let rec = gen.next().unwrap();
/// assert!(gen.footprint_pages() > 0);
/// assert!(rec.addr.page().index() >= gen.base_page().index());
/// ```
#[derive(Debug)]
pub struct InstanceGen {
    profile: BenchProfile,
    /// Base page of this instance's private address space.
    base_page: PageId,
    /// Per-region (spec index, first page offset within the instance).
    region_bases: Vec<u64>,
    states: Vec<RegionState>,
    rng: SimRng,
    /// Instructions generated so far (gaps + memory ops).
    insts: u64,
    /// Instruction budget used as the denominator for phase progress.
    horizon: u64,
    /// Pending store of a read-modify-write pair.
    pending: Option<TraceRecord>,
    /// Cached cumulative region weights (refreshed every `WEIGHT_REFRESH`).
    cum_weights: Vec<f64>,
    accesses_since_refresh: u64,
}

impl InstanceGen {
    /// Creates a generator for `profile` on `core`, seeded from `seed`.
    ///
    /// `horizon` is the instruction budget of the run; it only affects
    /// phase-progress computation (`Phase::Init`), not the stream length.
    ///
    /// # Panics
    ///
    /// Panics if the profile has no regions or a zero total weight.
    pub fn new(profile: BenchProfile, core: usize, seed: u64, horizon: u64) -> Self {
        assert!(!profile.regions.is_empty(), "profile without regions");
        let mut rng = SimRng::from_seed(seed).child_indexed("instance", core as u64);
        let mut region_bases = Vec::with_capacity(profile.regions.len());
        let mut offset = 0u64;
        for r in &profile.regions {
            assert!(r.pages > 0, "region {} has zero pages", r.name);
            region_bases.push(offset);
            offset += r.pages;
        }
        let states: Vec<RegionState> = profile
            .regions
            .iter()
            .map(|r| RegionState::new(r, &mut rng))
            .collect();
        // Cores get disjoint 16 GiB virtual slots so copies never share pages.
        let base_page = PageId((core as u64) << 22);
        let mut gen = InstanceGen {
            profile,
            base_page,
            region_bases,
            states,
            rng,
            insts: 0,
            horizon: horizon.max(1),
            pending: None,
            cum_weights: Vec::new(),
            accesses_since_refresh: 0,
        };
        gen.refresh_weights();
        gen
    }

    /// The benchmark profile this instance replays.
    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    /// First page of this instance's private address space.
    pub fn base_page(&self) -> PageId {
        self.base_page
    }

    /// Total pages this instance can touch.
    pub fn footprint_pages(&self) -> u64 {
        self.profile.regions.iter().map(|r| r.pages).sum()
    }

    /// Instructions generated so far.
    pub fn instructions(&self) -> u64 {
        self.insts
    }

    /// The page range `[start, end)` of the region with the given spec
    /// index, in global page numbers.
    pub fn region_page_range(&self, region_idx: usize) -> (PageId, PageId) {
        let start = self.base_page.index() + self.region_bases[region_idx];
        let end = start + self.profile.regions[region_idx].pages;
        (PageId(start), PageId(end))
    }

    /// Serializes the generator's dynamic state (region cursors, RNG
    /// stream, instruction count, pending RMW store, cached weights) into
    /// `w`. Static configuration (profile, bases, horizon) is not written:
    /// a restore target must be built with identical constructor inputs.
    pub fn save_state(&self, w: &mut ByteWriter) {
        w.u32(self.states.len() as u32);
        for st in &self.states {
            let (cursor, page_perm_seed) = st.dynamic_state();
            w.u64(cursor);
            w.u64(page_perm_seed);
        }
        let (seed, s) = self.rng.state();
        w.u64(seed);
        for word in s {
            w.u64(word);
        }
        w.u64(self.insts);
        match &self.pending {
            None => w.u8(0),
            Some(rec) => {
                w.u8(1);
                w.u32(rec.inst_gap);
                w.u64(rec.pc);
                w.u64(rec.addr.0);
                w.u8(u8::from(rec.kind.is_write()));
            }
        }
        // The cached cumulative weights were computed at a *past* insts
        // value; recomputing them on restore would shift the refresh
        // schedule, so the exact f64 bits travel with the state.
        w.u32(self.cum_weights.len() as u32);
        for &cw in &self.cum_weights {
            w.f64(cw);
        }
        w.u64(self.accesses_since_refresh);
    }

    /// Restores the dynamic state captured by [`InstanceGen::save_state`]
    /// into a freshly-constructed generator with identical inputs.
    pub fn restore_state(&mut self, r: &mut ByteReader) -> Result<(), CodecError> {
        let n_states = r.seq_len(16)?;
        if n_states != self.states.len() {
            return Err(CodecError::Malformed("region state count mismatch"));
        }
        for i in 0..n_states {
            let cursor = r.u64()?;
            let page_perm_seed = r.u64()?;
            self.states[i] =
                RegionState::from_dynamic_state(&self.profile.regions[i], cursor, page_perm_seed);
        }
        let seed = r.u64()?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        self.rng = SimRng::from_state(seed, s);
        self.insts = r.u64()?;
        self.pending = match r.u8()? {
            0 => None,
            1 => Some(TraceRecord {
                inst_gap: r.u32()?,
                pc: r.u64()?,
                addr: Addr(r.u64()?),
                kind: if r.u8()? != 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            }),
            _ => return Err(CodecError::Malformed("bad pending-record tag")),
        };
        let n_weights = r.seq_len(8)?;
        if n_weights != self.profile.regions.len() {
            return Err(CodecError::Malformed("weight count mismatch"));
        }
        self.cum_weights.clear();
        for _ in 0..n_weights {
            self.cum_weights.push(r.f64()?);
        }
        self.accesses_since_refresh = r.u64()?;
        Ok(())
    }

    fn refresh_weights(&mut self) {
        let progress = (self.insts as f64 / self.horizon as f64).min(1.0);
        let insts = self.insts;
        self.cum_weights.clear();
        let mut acc = 0.0;
        for r in &self.profile.regions {
            acc += r.phase.effective_weight(r.weight, progress, insts);
            self.cum_weights.push(acc);
        }
        // If every region is dormant (possible between periodic phases),
        // fall back to phase-independent weights so the stream never stalls.
        if acc == 0.0 {
            let mut acc = 0.0;
            self.cum_weights.clear();
            for r in &self.profile.regions {
                acc +=
                    r.weight * f64::from(u8::from(matches!(r.phase, crate::region::Phase::Always)));
                self.cum_weights.push(acc);
            }
            if acc == 0.0 {
                // Degenerate profile: use raw weights.
                let mut acc = 0.0;
                self.cum_weights.clear();
                for r in &self.profile.regions {
                    acc += r.weight;
                    self.cum_weights.push(acc);
                }
                assert!(acc > 0.0, "profile has zero total weight");
            }
        }
    }

    fn pick_region(&mut self) -> usize {
        let total = *self.cum_weights.last().expect("non-empty");
        let u = self.rng.unit() * total;
        match self
            .cum_weights
            .binary_search_by(|w| w.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => (i + 1).min(self.cum_weights.len() - 1),
            Err(i) => i.min(self.cum_weights.len() - 1),
        }
    }

    fn sample_gap(&mut self) -> u32 {
        let mean = self.profile.gap_mean;
        let spread = self.profile.gap_spread;
        if spread == 0 {
            return mean;
        }
        let lo = mean.saturating_sub(spread);
        lo + self.rng.below(2 * spread as u64 + 1) as u32
    }

    fn make_record(&mut self, region_idx: usize, kind: AccessKind, line_off: u64) -> TraceRecord {
        let gap = self.sample_gap();
        let region_base_lines = (self.base_page.index() + self.region_bases[region_idx])
            * (PAGE_SIZE / LINE_SIZE) as u64;
        let addr = Addr((region_base_lines + line_off) * LINE_SIZE as u64);
        let pc = 0x0040_0000 + (region_idx as u64) * 0x100 + u64::from(kind.is_write()) * 4;
        self.insts += gap as u64 + 1;
        TraceRecord {
            inst_gap: gap,
            pc,
            addr,
            kind,
        }
    }
}

impl Iterator for InstanceGen {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if let Some(pending) = self.pending.take() {
            // The paired store of an RMW visit; account for its gap.
            self.insts += pending.inst_gap as u64 + 1;
            return Some(pending);
        }
        self.accesses_since_refresh += 1;
        if self.accesses_since_refresh >= WEIGHT_REFRESH {
            self.accesses_since_refresh = 0;
            self.refresh_weights();
        }
        let idx = self.pick_region();
        let spec: &RegionSpec = &self.profile.regions[idx];
        let paired = spec.paired_rmw;
        // Only InitThenScan consults progress; skip the division otherwise
        // (this runs once per generated access).
        let write_frac = if matches!(spec.phase, crate::region::Phase::InitThenScan { .. }) {
            let progress = (self.insts as f64 / self.horizon as f64).min(1.0);
            spec.phase.effective_write_frac(spec.write_frac, progress)
        } else {
            spec.write_frac
        };
        let line_off = {
            // Split borrows: state and rng are distinct fields.
            let insts = self.insts;
            let (states, rng) = (&mut self.states, &mut self.rng);
            states[idx].next_line(&self.profile.regions[idx], rng, insts)
        };
        if paired {
            let load = self.make_record(idx, AccessKind::Read, line_off);
            // Queue the store without yet accounting its instructions.
            let mut store = TraceRecord {
                inst_gap: self.sample_gap().min(2),
                pc: load.pc + 8,
                addr: load.addr,
                kind: AccessKind::Write,
            };
            store.inst_gap = store.inst_gap.min(2); // RMW store follows closely
            self.pending = Some(store);
            Some(load)
        } else {
            let is_write = self.rng.chance(write_frac);
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            Some(self.make_record(idx, kind, line_off))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchProfile;
    use crate::region::RegionSpec;

    fn tiny_profile() -> BenchProfile {
        BenchProfile {
            name: "tiny",
            regions: vec![
                RegionSpec::lookup("tab", 8, 1.0, 0.8),
                RegionSpec::stream_out("out", 4, 0.5),
                RegionSpec::init_data("init", 4, 4.0, 0.05),
            ],
            gap_mean: 3,
            gap_spread: 1,
        }
    }

    #[test]
    fn deterministic_streams() {
        let a: Vec<_> = InstanceGen::new(tiny_profile(), 1, 7, 100_000)
            .take(500)
            .collect();
        let b: Vec<_> = InstanceGen::new(tiny_profile(), 1, 7, 100_000)
            .take(500)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_cores_disjoint_address_spaces() {
        let a = InstanceGen::new(tiny_profile(), 0, 7, 100_000);
        let b = InstanceGen::new(tiny_profile(), 1, 7, 100_000);
        let a_pages: Vec<_> = a.take(200).map(|r| r.addr.page()).collect();
        let b_end = b.base_page().index();
        assert!(a_pages.iter().all(|p| p.index() < b_end));
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let mut gen = InstanceGen::new(tiny_profile(), 2, 9, 100_000);
        let base = gen.base_page().index();
        let fp = gen.footprint_pages();
        for _ in 0..20_000 {
            let r = gen.next().unwrap();
            let p = r.addr.page().index();
            assert!(p >= base && p < base + fp, "page {p} outside footprint");
        }
    }

    #[test]
    fn init_region_goes_quiet() {
        let mut gen = InstanceGen::new(tiny_profile(), 0, 11, 200_000);
        let (init_lo, init_hi) = gen.region_page_range(2);
        let mut early_hits = 0;
        let mut late_hits = 0;
        for _ in 0..50_000 {
            let r = gen.next().unwrap();
            let p = r.addr.page();
            let in_init = p >= init_lo && p < init_hi;
            if gen.instructions() < 10_000 {
                early_hits += u32::from(in_init);
            } else if gen.instructions() > 100_000 {
                late_hits += u32::from(in_init);
            }
        }
        assert!(early_hits > 0, "init region silent at start");
        assert_eq!(late_hits, 0, "init region active after its phase");
    }

    #[test]
    fn rmw_pairs_are_adjacent_same_line() {
        let profile = BenchProfile {
            name: "rmw",
            regions: vec![RegionSpec::stream_rmw("grid", 4, 1.0, 1)],
            gap_mean: 2,
            gap_spread: 0,
        };
        let recs: Vec<_> = InstanceGen::new(profile, 0, 3, 10_000).take(100).collect();
        for pair in recs.chunks(2) {
            assert_eq!(pair[0].kind, AccessKind::Read);
            assert_eq!(pair[1].kind, AccessKind::Write);
            assert_eq!(pair[0].addr, pair[1].addr);
        }
    }

    #[test]
    fn instruction_accounting_matches_records() {
        let mut gen = InstanceGen::new(tiny_profile(), 0, 5, 100_000);
        let mut total = 0u64;
        for _ in 0..1000 {
            total += gen.next().unwrap().instructions();
        }
        assert_eq!(total, gen.instructions());
    }

    #[test]
    fn region_page_ranges_are_contiguous() {
        let gen = InstanceGen::new(tiny_profile(), 0, 5, 100);
        let (a0, a1) = gen.region_page_range(0);
        let (b0, b1) = gen.region_page_range(1);
        assert_eq!(a1, b0);
        assert_eq!(a1.index() - a0.index(), 8);
        assert_eq!(b1.index() - b0.index(), 4);
    }
}
