//! Trace record types.
//!
//! RAMP distinguishes two trace levels, mirroring the paper's toolchain:
//!
//! * [`TraceRecord`] — a *CPU-level* memory instruction (what PinPlay would
//!   emit): the number of intervening non-memory instructions, a program
//!   counter, the accessed address and the access kind. These are fed into
//!   the cache hierarchy.
//! * [`MemEvent`] — a *memory-level* access (what survives cache filtering):
//!   a cache-line fill read or a dirty writeback. These are what the DRAM
//!   controllers and the AVF tracker consume.

use ramp_sim::units::{AccessKind, Addr, LineAddr};

/// One CPU-level memory instruction from a workload trace.
///
/// `inst_gap` is the number of non-memory instructions executed since the
/// previous memory instruction; the core model retires those at full issue
/// width before handling the access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions preceding this access.
    pub inst_gap: u32,
    /// Program counter of the memory instruction (synthetic but stable per
    /// region, so PC-based predictors could be layered on top).
    pub pc: u64,
    /// Byte address accessed.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
}

impl TraceRecord {
    /// Total instructions this record accounts for (the gap plus itself).
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.inst_gap as u64 + 1
    }
}

/// One main-memory access (post cache filtering).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// The cache line accessed.
    pub line: LineAddr,
    /// `Read` for a demand fill, `Write` for a dirty writeback.
    pub kind: AccessKind,
    /// Core that caused the access (the writeback inherits the evicting
    /// core).
    pub core: usize,
}

impl MemEvent {
    /// Convenience constructor for a fill read.
    pub fn read(line: LineAddr, core: usize) -> Self {
        MemEvent {
            line,
            kind: AccessKind::Read,
            core,
        }
    }

    /// Convenience constructor for a writeback.
    pub fn write(line: LineAddr, core: usize) -> Self {
        MemEvent {
            line,
            kind: AccessKind::Write,
            core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_instruction_accounting() {
        let r = TraceRecord {
            inst_gap: 9,
            pc: 0x400000,
            addr: Addr(64),
            kind: AccessKind::Read,
        };
        assert_eq!(r.instructions(), 10);
    }

    #[test]
    fn mem_event_constructors() {
        let l = LineAddr(5);
        assert_eq!(MemEvent::read(l, 2).kind, AccessKind::Read);
        assert_eq!(MemEvent::write(l, 2).kind, AccessKind::Write);
        assert_eq!(MemEvent::read(l, 2).core, 2);
    }
}
