//! Data-structure regions: the building blocks of synthetic benchmarks.
//!
//! Each benchmark profile is composed of a handful of named *regions*, one
//! per program data structure (the same granularity at which Section 7 of
//! the paper applies program annotations). A region owns a contiguous range
//! of pages in its instance's address space and describes *how* the program
//! touches it: access pattern, activity phase, store fraction and
//! read-modify-write pairing.
//!
//! The combination of these knobs — after cache filtering — produces the
//! memory-level behaviours the paper's analysis rests on:
//!
//! | archetype | memory-level traffic | hotness | AVF (risk) |
//! |---|---|---|---|
//! | write-only stream (`stream_out`) | writebacks only | hot | ~0 (low) |
//! | read-only lookup (`lookup`) | fills, re-read over time | hot | high |
//! | streaming RMW (`stream_rmw`) | fill + writeback per sweep | hot | sweep-gap dominated |
//! | write-heavy buffer (`hot_buffer`) | mostly writebacks | hot | low |
//! | init-only data (`init_data`) | one writeback burst | cold | ~0 |
//! | archival reads (`archive`) | sparse fills | cold | high |

use ramp_sim::rng::{SimRng, Zipf};

/// Instructions per popularity phase: the lower-ranked part of each Zipf
/// region's popularity mapping is re-scrambled every phase, modeling the
/// working-set drift that makes dynamic migration worthwhile (Section 6.1
/// observes the top-hot set "changes considerably from interval to
/// interval"). The top quarter of ranks stays pinned so profile-guided
/// static placement retains its oracular advantage.
pub const POPULARITY_PHASE_INSTS: u64 = 600_000;

/// Fraction of top ranks whose page mapping never drifts.
const STABLE_RANK_FRACTION: f64 = 0.25;

/// How accesses are distributed over a region's lines.
#[derive(Clone, Debug, PartialEq)]
pub enum Pattern {
    /// Zipf-skewed page popularity with exponent `alpha` (uniform line
    /// within the page). `alpha = 0` is uniform-random.
    Zipf {
        /// Skew exponent; larger concentrates traffic on fewer pages.
        alpha: f64,
    },
    /// Sequential sweep through the region's lines with the given stride,
    /// wrapping around. Stride > 1 models strided grid walks (cactusADM).
    Stream {
        /// Distance in cache lines between consecutive accesses.
        stride_lines: u32,
    },
    /// Uniformly random line (dependent pointer chasing).
    Random,
}

/// When during execution a region is active.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Phase {
    /// Active for the whole run.
    Always,
    /// Active only during the first `frac` of the run (initialization).
    Init {
        /// Fraction of the run during which the region is touched.
        frac: f64,
    },
    /// Active during a `duty` fraction at the start of every `period`
    /// instructions (periodic phases: checkpoints, rebuilds).
    Periodic {
        /// Phase period in instructions.
        period: u64,
        /// Active fraction of each period, in `(0, 1]`.
        duty: f64,
    },
    /// Written during the first `frac` of the run, then *read back* slowly
    /// for the rest of the run with `scan_weight` instead of the region's
    /// base weight. This is program input data: initialized once, consumed
    /// gradually — the paper's large cold-but-vulnerable page population
    /// (each sparse read makes a long interval ACE).
    InitThenScan {
        /// Fraction of the run spent initializing (writes).
        frac: f64,
        /// Absolute weight of the read-back scan after initialization.
        scan_weight: f64,
    },
}

impl Phase {
    /// Multiplier applied to the region weight at the given point of the
    /// run (`progress` in `[0,1]`, `insts` the absolute instruction count).
    pub fn activity(&self, progress: f64, insts: u64) -> f64 {
        match *self {
            Phase::Always => 1.0,
            Phase::Init { frac } => {
                if progress < frac {
                    1.0
                } else {
                    0.0
                }
            }
            Phase::Periodic { period, duty } => {
                if period == 0 {
                    return 0.0;
                }
                let pos = (insts % period) as f64 / period as f64;
                if pos < duty {
                    1.0
                } else {
                    0.0
                }
            }
            Phase::InitThenScan { frac, .. } => {
                // The weight itself is swapped in `effective_weight`; the
                // activity multiplier stays 1 in both phases.
                let _ = frac;
                1.0
            }
        }
    }

    /// The region weight to use at this point of the run, given the
    /// region's base weight.
    pub fn effective_weight(&self, base: f64, progress: f64, insts: u64) -> f64 {
        match *self {
            Phase::InitThenScan { frac, scan_weight } => {
                if progress < frac {
                    base
                } else {
                    scan_weight
                }
            }
            _ => base * self.activity(progress, insts),
        }
    }

    /// The effective store probability: [`Phase::InitThenScan`] regions
    /// write during initialization and read afterwards.
    pub fn effective_write_frac(&self, base: f64, progress: f64) -> f64 {
        match *self {
            Phase::InitThenScan { frac, .. } => {
                if progress < frac {
                    1.0
                } else {
                    0.0
                }
            }
            _ => base,
        }
    }
}

/// A named data-structure region within a benchmark profile.
#[derive(Clone, Debug)]
pub struct RegionSpec {
    /// Structure name (used by program annotations, Figure 17).
    pub name: String,
    /// Region size in pages.
    pub pages: u64,
    /// Relative share of the benchmark's memory instructions while active.
    pub weight: f64,
    /// Line-selection pattern.
    pub pattern: Pattern,
    /// Activity phase.
    pub phase: Phase,
    /// Probability that an access is a store.
    pub write_frac: f64,
    /// If set, every visit issues a load immediately followed by a store to
    /// the same line (read-modify-write), overriding `write_frac`.
    pub paired_rmw: bool,
}

impl RegionSpec {
    /// A read-mostly, Zipf-skewed lookup structure (hot and high-risk).
    pub fn lookup(name: impl Into<String>, pages: u64, weight: f64, alpha: f64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Zipf { alpha },
            phase: Phase::Always,
            write_frac: 0.0,
            paired_rmw: false,
        }
    }

    /// A read-mostly lookup with a small store fraction.
    pub fn lookup_rw(
        name: impl Into<String>,
        pages: u64,
        weight: f64,
        alpha: f64,
        write_frac: f64,
    ) -> Self {
        RegionSpec {
            write_frac,
            ..Self::lookup(name, pages, weight, alpha)
        }
    }

    /// A write-dominated output stream (hot and low-risk: almost all
    /// writebacks, with a small read-back fraction so its pages have low
    /// but non-zero AVF, as in the paper's Figure 4 scatter).
    pub fn stream_out(name: impl Into<String>, pages: u64, weight: f64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Stream { stride_lines: 1 },
            phase: Phase::Always,
            write_frac: 0.97,
            paired_rmw: false,
        }
    }

    /// A streaming read-modify-write sweep (lbm/GemsFDTD-style grids).
    pub fn stream_rmw(name: impl Into<String>, pages: u64, weight: f64, stride_lines: u32) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Stream { stride_lines },
            phase: Phase::Always,
            write_frac: 0.0,
            paired_rmw: true,
        }
    }

    /// A read-only streaming sweep (scans of constant data).
    pub fn stream_read(
        name: impl Into<String>,
        pages: u64,
        weight: f64,
        stride_lines: u32,
    ) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Stream { stride_lines },
            phase: Phase::Always,
            write_frac: 0.0,
            paired_rmw: false,
        }
    }

    /// A small, intensely-reused scratch buffer with a high store fraction
    /// (hot and low-risk).
    pub fn hot_buffer(name: impl Into<String>, pages: u64, weight: f64, write_frac: f64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Zipf { alpha: 0.8 },
            phase: Phase::Always,
            write_frac,
            paired_rmw: false,
        }
    }

    /// A tiny, cache-resident working set (stack frames, loop-local
    /// buffers): huge access weight, almost no main-memory traffic. This is
    /// what separates latency-sensitive low-MPKI programs from
    /// bandwidth-bound ones.
    pub fn resident(name: impl Into<String>, pages: u64, weight: f64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Zipf { alpha: 0.6 },
            phase: Phase::Always,
            write_frac: 0.5,
            paired_rmw: false,
        }
    }

    /// Initialization data: written during the first `frac` of the run and
    /// never touched again (cold and low-risk).
    pub fn init_data(name: impl Into<String>, pages: u64, weight: f64, frac: f64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Stream { stride_lines: 1 },
            phase: Phase::Init { frac },
            write_frac: 1.0,
            paired_rmw: false,
        }
    }

    /// Program input data: written during the first `frac` of the run,
    /// then read back slowly (weight `scan_weight`) for the remainder —
    /// cold and high-risk, the dominant AVF mass of real footprints.
    pub fn input_data(
        name: impl Into<String>,
        pages: u64,
        init_weight: f64,
        frac: f64,
        scan_weight: f64,
    ) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight: init_weight,
            pattern: Pattern::Stream { stride_lines: 1 },
            phase: Phase::InitThenScan { frac, scan_weight },
            write_frac: 1.0,
            paired_rmw: false,
        }
    }

    /// Rarely-read archival data (cold and high-risk: each sparse read makes
    /// the whole preceding interval ACE).
    pub fn archive(name: impl Into<String>, pages: u64, weight: f64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Random,
            phase: Phase::Always,
            write_frac: 0.0,
            paired_rmw: false,
        }
    }

    /// Periodically-written checkpoint/log data.
    pub fn checkpoint(name: impl Into<String>, pages: u64, weight: f64, period: u64) -> Self {
        RegionSpec {
            name: name.into(),
            pages,
            weight,
            pattern: Pattern::Stream { stride_lines: 1 },
            phase: Phase::Periodic { period, duty: 0.1 },
            write_frac: 1.0,
            paired_rmw: false,
        }
    }

    /// Total lines in the region.
    pub fn lines(&self) -> u64 {
        self.pages * ramp_sim::units::LINES_PER_PAGE as u64
    }
}

/// Ranks whose scrambled page is cached per region ([`RegionState`]).
/// Zipf mass concentrates on low ranks, so a small table absorbs most
/// lookups; ranks past the cap fall back to computing the hash.
const PERM_MEMO_CAP: u64 = 1024;

/// Mutable per-region generation state.
#[derive(Debug)]
pub(crate) struct RegionState {
    cursor: u64,
    zipf: Option<Zipf>,
    page_perm_seed: u64,
    /// First drifting rank: ranks below stay on `page_perm_seed` forever.
    stable_cut: u64,
    /// Cached `scramble(rank, seed, pages)` for ranks `0..memo.len()`.
    /// Entries below `stable_cut` never change; the rest are valid for
    /// `memo_epoch` and recomputed when the popularity phase advances.
    perm_memo: Vec<u64>,
    memo_epoch: u64,
}

impl RegionState {
    pub(crate) fn new(spec: &RegionSpec, rng: &mut SimRng) -> Self {
        Self::build(spec, 0, rng.next_u64())
    }

    fn build(spec: &RegionSpec, cursor: u64, page_perm_seed: u64) -> Self {
        let zipf = match spec.pattern {
            Pattern::Zipf { alpha } => Some(Zipf::new(spec.pages as usize, alpha)),
            _ => None,
        };
        let stable_cut = (((spec.pages as f64) * STABLE_RANK_FRACTION) as u64).max(1);
        let mut state = RegionState {
            cursor,
            zipf,
            page_perm_seed,
            stable_cut,
            perm_memo: Vec::new(),
            memo_epoch: 0,
        };
        if state.zipf.is_some() {
            state.perm_memo = vec![0; spec.pages.min(PERM_MEMO_CAP) as usize];
            state.fill_memo(spec, 0);
            for rank in 0..(state.perm_memo.len() as u64).min(stable_cut) {
                state.perm_memo[rank as usize] = scramble(rank, page_perm_seed, spec.pages);
            }
        }
        state
    }

    /// Recomputes the drifting (post-`stable_cut`) part of the memo for
    /// popularity phase `epoch`.
    fn fill_memo(&mut self, spec: &RegionSpec, epoch: u64) {
        let drift_seed = self.page_perm_seed ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for rank in self.stable_cut..self.perm_memo.len() as u64 {
            self.perm_memo[rank as usize] = scramble(rank, drift_seed, spec.pages);
        }
        self.memo_epoch = epoch;
    }

    /// The dynamic fields `(cursor, page_perm_seed)`, for checkpointing.
    /// The Zipf table and permutation memo are static per (spec, seed) and
    /// rebuilt on restore.
    pub(crate) fn dynamic_state(&self) -> (u64, u64) {
        (self.cursor, self.page_perm_seed)
    }

    /// Rebuilds a region state from [`RegionState::dynamic_state`] output.
    pub(crate) fn from_dynamic_state(spec: &RegionSpec, cursor: u64, page_perm_seed: u64) -> Self {
        Self::build(spec, cursor, page_perm_seed)
    }

    /// Picks the next line offset (in lines, relative to the region base).
    ///
    /// `insts` is the instance's instruction count, which drives popularity
    /// drift for Zipf regions.
    pub(crate) fn next_line(&mut self, spec: &RegionSpec, rng: &mut SimRng, insts: u64) -> u64 {
        let lines = spec.lines();
        debug_assert!(lines > 0);
        match spec.pattern {
            Pattern::Zipf { .. } => {
                let rank = self.zipf.as_ref().expect("zipf state").sample(rng) as u64;
                // Scramble rank -> page so popular pages are spread over the
                // region instead of clustered at its start. Ranks below the
                // stable core drift to new pages every popularity phase.
                let page = if rank < self.perm_memo.len() as u64 {
                    if rank >= self.stable_cut {
                        let epoch = insts / POPULARITY_PHASE_INSTS;
                        if epoch != self.memo_epoch {
                            self.fill_memo(spec, epoch);
                        }
                    }
                    self.perm_memo[rank as usize]
                } else {
                    let seed = if rank < self.stable_cut {
                        self.page_perm_seed
                    } else {
                        let epoch = insts / POPULARITY_PHASE_INSTS;
                        self.page_perm_seed ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    };
                    scramble(rank, seed, spec.pages)
                };
                page * ramp_sim::units::LINES_PER_PAGE as u64
                    + rng.below(ramp_sim::units::LINES_PER_PAGE as u64)
            }
            Pattern::Stream { stride_lines } => {
                let line = self.cursor;
                self.cursor = (self.cursor + stride_lines.max(1) as u64) % lines;
                // When the stride wraps exactly onto the start, nudge by one
                // so all lines are eventually covered.
                if self.cursor == 0 && stride_lines as u64 > 1 && lines % stride_lines as u64 == 0 {
                    self.cursor = (line + 1) % lines;
                }
                line
            }
            Pattern::Random => rng.below(lines),
        }
    }
}

/// Maps a Zipf rank to a pseudo-random (but fixed) page index in `0..n`.
fn scramble(rank: u64, seed: u64, n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let mut x = rank.wrapping_add(seed);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    // A fixed affine permutation would be bijective; a hash mod n is not,
    // but collisions merely merge two popularity ranks, which is harmless
    // for a popularity model. Keep determinism and spread.
    x % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp_sim::units::LINES_PER_PAGE;

    fn rng() -> SimRng {
        SimRng::from_seed(99)
    }

    #[test]
    fn phase_activity() {
        assert_eq!(Phase::Always.activity(0.99, 123), 1.0);
        let init = Phase::Init { frac: 0.1 };
        assert_eq!(init.activity(0.05, 0), 1.0);
        assert_eq!(init.activity(0.5, 0), 0.0);
        let per = Phase::Periodic {
            period: 100,
            duty: 0.2,
        };
        assert_eq!(per.activity(0.0, 10), 1.0);
        assert_eq!(per.activity(0.0, 50), 0.0);
        assert_eq!(per.activity(0.0, 110), 1.0);
    }

    #[test]
    fn stream_covers_all_lines_in_order() {
        let spec = RegionSpec::stream_out("s", 2, 1.0);
        let mut st = RegionState::new(&spec, &mut rng());
        let mut r = rng();
        let n = spec.lines();
        let seen: Vec<u64> = (0..n).map(|_| st.next_line(&spec, &mut r, 0)).collect();
        let expect: Vec<u64> = (0..n).collect();
        assert_eq!(seen, expect);
        // wraps
        assert_eq!(st.next_line(&spec, &mut r, 0), 0);
    }

    #[test]
    fn strided_stream_stays_in_bounds() {
        let spec = RegionSpec::stream_rmw("g", 3, 1.0, 7);
        let mut st = RegionState::new(&spec, &mut rng());
        let mut r = rng();
        for _ in 0..10_000 {
            let l = st.next_line(&spec, &mut r, 0);
            assert!(l < spec.lines());
        }
    }

    #[test]
    fn zipf_region_is_skewed_and_in_bounds() {
        let spec = RegionSpec::lookup("t", 64, 1.0, 1.1);
        let mut st = RegionState::new(&spec, &mut rng());
        let mut r = rng();
        let mut page_counts = vec![0u64; 64];
        for _ in 0..50_000 {
            let l = st.next_line(&spec, &mut r, 0);
            assert!(l < spec.lines());
            page_counts[(l / LINES_PER_PAGE as u64) as usize] += 1;
        }
        let mut sorted = page_counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Heavily skewed: the hottest page should dominate the median page.
        assert!(sorted[0] > sorted[32] * 4);
    }

    #[test]
    fn random_region_in_bounds() {
        let spec = RegionSpec::archive("a", 5, 0.1);
        let mut st = RegionState::new(&spec, &mut rng());
        let mut r = rng();
        for _ in 0..1000 {
            assert!(st.next_line(&spec, &mut r, 0) < spec.lines());
        }
    }

    #[test]
    fn archetype_constructors_have_expected_shape() {
        assert!(RegionSpec::stream_out("o", 4, 1.0).write_frac > 0.9);
        assert!(RegionSpec::stream_rmw("g", 4, 1.0, 1).paired_rmw);
        assert_eq!(RegionSpec::lookup("l", 4, 1.0, 0.5).write_frac, 0.0);
        assert!(matches!(
            RegionSpec::init_data("i", 4, 1.0, 0.05).phase,
            Phase::Init { .. }
        ));
        assert!(matches!(
            RegionSpec::checkpoint("c", 4, 1.0, 1000).phase,
            Phase::Periodic { .. }
        ));
    }
}
