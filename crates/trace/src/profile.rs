//! Benchmark profiles: 15 SPEC CPU2006 programs plus the two DoE proxy
//! applications (XSBench, LULESH) used by the paper.
//!
//! Each profile is a synthetic stand-in for the PinPlay/SimPoint trace of
//! the real program (see DESIGN.md's substitution table). Every profile is
//! written against a normalized traffic budget of ~100 weight units:
//!
//! * a **resident** working set (stack/locals) absorbs 84-94 % of memory
//!   instructions and stays on chip — this sets the benchmark's MPKI class
//!   (the x-axis ordering of Figures 7/8);
//! * **hot structures** (lookup tables, RMW grids, write streams, scratch
//!   buffers) take most of the remaining traffic and produce the hot page
//!   population, mixing high-risk (read-over-time) and low-risk
//!   (write-dominated) pages;
//! * **input data** is written during initialization and *read back
//!   slowly* for the rest of the run, plus standalone slow scans — the
//!   large cold-but-vulnerable population that dominates real footprints'
//!   AVF mass and keeps the paper's SER ratios finite.
//!
//! The compositions are tuned (see `ramp-bench --bin calibrate`) so the
//! workloads reproduce the paper's characteristics: mean memory AVF
//! ordered from astar (lowest) to milc (~highest), hot-and-low-risk
//! populations spanning single digits to ~40 % of the footprint, negative
//! write-ratio/AVF correlation, and lbm as the uniform-hotness outlier.
//! Capacities are 1/64-scale relative to the paper's 17 GB machine
//! (DESIGN.md §2).

use crate::region::RegionSpec;

/// A synthetic benchmark: a name plus its region composition and
/// memory-instruction density.
#[derive(Clone, Debug)]
pub struct BenchProfile {
    /// Benchmark name (matches the paper's workload labels).
    pub name: &'static str,
    /// Data-structure regions, laid out contiguously per instance.
    pub regions: Vec<RegionSpec>,
    /// Mean number of non-memory instructions between memory accesses.
    pub gap_mean: u32,
    /// Half-width of the uniform jitter applied to `gap_mean`.
    pub gap_spread: u32,
}

impl BenchProfile {
    /// Total pages an instance of this profile can touch.
    pub fn footprint_pages(&self) -> u64 {
        self.regions.iter().map(|r| r.pages).sum()
    }
}

/// The benchmarks evaluated in the paper (Table 2 plus the two DoE proxy
/// apps).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    Mcf,
    Lbm,
    Milc,
    Omnetpp,
    Astar,
    Sphinx,
    Soplex,
    DealII,
    Libquantum,
    Leslie3d,
    Gcc,
    GemsFDTD,
    Bzip,
    Bwaves,
    CactusADM,
    XSBench,
    Lulesh,
}

impl Benchmark {
    /// All 17 benchmarks.
    pub const ALL: [Benchmark; 17] = [
        Benchmark::Mcf,
        Benchmark::Lbm,
        Benchmark::Milc,
        Benchmark::Omnetpp,
        Benchmark::Astar,
        Benchmark::Sphinx,
        Benchmark::Soplex,
        Benchmark::DealII,
        Benchmark::Libquantum,
        Benchmark::Leslie3d,
        Benchmark::Gcc,
        Benchmark::GemsFDTD,
        Benchmark::Bzip,
        Benchmark::Bwaves,
        Benchmark::CactusADM,
        Benchmark::XSBench,
        Benchmark::Lulesh,
    ];

    /// The benchmark's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mcf => "mcf",
            Benchmark::Lbm => "lbm",
            Benchmark::Milc => "milc",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::Astar => "astar",
            Benchmark::Sphinx => "sphinx",
            Benchmark::Soplex => "soplex",
            Benchmark::DealII => "dealII",
            Benchmark::Libquantum => "libquantum",
            Benchmark::Leslie3d => "leslie3d",
            Benchmark::Gcc => "gcc",
            Benchmark::GemsFDTD => "GemsFDTD",
            Benchmark::Bzip => "bzip",
            Benchmark::Bwaves => "bwaves",
            Benchmark::CactusADM => "cactusADM",
            Benchmark::XSBench => "xsbench",
            Benchmark::Lulesh => "lulesh",
        }
    }

    /// Parses a paper-style benchmark name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Builds the benchmark's synthetic profile.
    pub fn profile(self) -> BenchProfile {
        match self {
            // ---- latency-sensitive, low-AVF group ---------------------
            Benchmark::Astar => BenchProfile {
                name: "astar",
                regions: vec![
                    RegionSpec::resident("search_stack", 8, 96.0),
                    RegionSpec::hot_buffer("open_list", 90, 1.43, 0.93),
                    RegionSpec::lookup("node_map", 40, 0.59, 0.9),
                    RegionSpec::stream_out("path_scratch", 110, 0.91),
                    RegionSpec::stream_read("map_metadata", 390, 2.0, 1),
                    RegionSpec::input_data("graph_init", 614, 6.0, 0.04, 3.0),
                ],
                gap_mean: 7,
                gap_spread: 2,
            },
            Benchmark::Bzip => BenchProfile {
                name: "bzip",
                regions: vec![
                    RegionSpec::resident("sort_stack", 8, 94.5),
                    RegionSpec::hot_buffer("work_buf", 150, 1.56, 0.93),
                    RegionSpec::stream_out("output_block", 120, 0.85),
                    RegionSpec::stream_read("input_block", 390, 0.85, 1),
                    RegionSpec::lookup("huffman_tables", 10, 0.65, 0.5),
                    RegionSpec::input_data("dict_init", 320, 6.0, 0.04, 1.30),
                ],
                gap_mean: 6,
                gap_spread: 2,
            },
            Benchmark::Gcc => BenchProfile {
                name: "gcc",
                regions: vec![
                    RegionSpec::resident("parse_stack", 8, 95.0),
                    RegionSpec::hot_buffer("ast_nodes", 180, 1.30, 0.9),
                    RegionSpec::lookup("symbol_table", 36, 0.52, 1.0),
                    RegionSpec::stream_read("rtl_templates", 330, 0.78, 1),
                    RegionSpec::stream_out("ir_stream", 160, 1.04),
                    RegionSpec::input_data("source_init", 314, 6.0, 0.04, 1.17),
                ],
                gap_mean: 6,
                gap_spread: 2,
            },
            Benchmark::DealII => BenchProfile {
                name: "dealII",
                regions: vec![
                    RegionSpec::resident("assembly_locals", 8, 94.5),
                    RegionSpec::hot_buffer("solution_vecs", 170, 1.43, 0.92),
                    RegionSpec::stream_rmw("sparse_matrix", 36, 0.65, 1),
                    RegionSpec::lookup("dof_map", 28, 0.45, 0.8),
                    RegionSpec::stream_read("quadrature_tables", 330, 0.85, 1),
                    RegionSpec::input_data("mesh_init", 516, 6.0, 0.04, 1.17),
                ],
                gap_mean: 5,
                gap_spread: 2,
            },
            Benchmark::Omnetpp => BenchProfile {
                name: "omnetpp",
                regions: vec![
                    RegionSpec::resident("sim_kernel", 8, 93.0),
                    RegionSpec::hot_buffer("event_heap", 150, 1.69, 0.9),
                    RegionSpec::hot_buffer("msg_pool", 210, 1.30, 0.95),
                    RegionSpec::stream_read("topology", 360, 0.91, 1),
                    RegionSpec::stream_out("stats_log", 150, 0.98),
                    RegionSpec::input_data("net_init", 300, 6.0, 0.04, 1.30),
                ],
                gap_mean: 5,
                gap_spread: 2,
            },
            Benchmark::Sphinx => BenchProfile {
                name: "sphinx",
                regions: vec![
                    RegionSpec::resident("search_beams", 8, 93.5),
                    RegionSpec::lookup("acoustic_model", 52, 0.85, 0.7),
                    RegionSpec::hot_buffer("feature_buf", 130, 2.2, 0.92),
                    RegionSpec::stream_read("dictionary", 360, 0.91, 1),
                    RegionSpec::stream_out("lattice_out", 130, 1.5),
                    RegionSpec::input_data("model_init", 500, 6.0, 0.04, 1.37),
                ],
                gap_mean: 5,
                gap_spread: 2,
            },
            // ---- medium group -----------------------------------------
            Benchmark::CactusADM => {
                // Many small strided grid blocks: write-dominated in-place
                // updates, giving the large population of small hot-and-
                // low-risk structures behind Figure 17's 39 annotations and
                // the striding patterns MEA tracking likes.
                let mut regions = vec![RegionSpec::resident("adm_locals", 8, 92.5)];
                for i in 0..40u32 {
                    let mut r = RegionSpec::stream_out(format!("grid_block_{i:02}"), 18, 0.09);
                    r.pattern = crate::region::Pattern::Stream { stride_lines: 4 };
                    r.write_frac = 0.85;
                    regions.push(r);
                }
                regions.push(RegionSpec::lookup("adm_metric", 30, 0.72, 0.6));
                regions.push(RegionSpec::stream_read("horizon_data", 420, 2.6, 1));
                regions.push(RegionSpec::input_data(
                    "spacetime_init",
                    450,
                    6.0,
                    0.04,
                    3.2,
                ));
                BenchProfile {
                    name: "cactusADM",
                    regions,
                    gap_mean: 4,
                    gap_spread: 1,
                }
            }
            Benchmark::Soplex => BenchProfile {
                name: "soplex",
                regions: vec![
                    RegionSpec::resident("pivot_locals", 8, 93.5),
                    RegionSpec::lookup("matrix_cols", 110, 1.49, 0.5),
                    RegionSpec::hot_buffer("basis_factors", 180, 2.6, 0.93),
                    RegionSpec::stream_rmw("rhs_vectors", 30, 0.39, 1),
                    RegionSpec::stream_out("solution_log", 130, 1.3),
                    RegionSpec::stream_read("bounds_tables", 480, 2.2, 1),
                    RegionSpec::input_data("lp_init", 480, 6.0, 0.04, 2.8),
                ],
                gap_mean: 4,
                gap_spread: 1,
            },
            Benchmark::Lulesh => BenchProfile {
                name: "lulesh",
                regions: vec![
                    RegionSpec::resident("elem_locals", 8, 93.0),
                    RegionSpec::stream_rmw("nodal_coords", 170, 1.37, 1),
                    RegionSpec::stream_out("elem_forces", 150, 2.1),
                    RegionSpec::lookup("connectivity", 76, 0.59, 0.4),
                    RegionSpec::stream_read("region_tables", 480, 0.91, 1),
                    RegionSpec::input_data("domain_init", 500, 6.0, 0.04, 1.23),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            // ---- bandwidth-intensive, high-AVF group ------------------
            Benchmark::Libquantum => BenchProfile {
                name: "libquantum",
                regions: vec![
                    RegionSpec::resident("gate_locals", 6, 90.5),
                    RegionSpec::stream_rmw("qureg_state", 340, 3.38, 1),
                    RegionSpec::stream_out("gate_log", 170, 2.6),
                    RegionSpec::stream_read("state_snapshots", 570, 1.56, 1),
                    RegionSpec::input_data("qureg_init", 540, 6.0, 0.03, 1.56),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::Leslie3d => BenchProfile {
                name: "leslie3d",
                regions: vec![
                    RegionSpec::resident("cell_locals", 6, 90.5),
                    RegionSpec::stream_rmw("flow_field", 330, 2.99, 1),
                    RegionSpec::stream_read("boundary", 540, 1.43, 1),
                    RegionSpec::stream_out("flux_out", 110, 2.6),
                    RegionSpec::input_data("grid_init", 750, 6.0, 0.03, 1.62),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::GemsFDTD => BenchProfile {
                name: "GemsFDTD",
                regions: vec![
                    RegionSpec::resident("update_locals", 6, 90.5),
                    RegionSpec::stream_rmw("e_field", 200, 1.69, 1),
                    RegionSpec::stream_rmw("h_field", 200, 1.69, 1),
                    RegionSpec::stream_read("excitation_tables", 570, 1.43, 1),
                    RegionSpec::stream_out("far_field", 90, 2.1),
                    RegionSpec::input_data("fdtd_init", 690, 6.0, 0.03, 1.62),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::Lbm => BenchProfile {
                name: "lbm",
                // The Figure 4 outlier: dominant uniform RMW sweeps, almost
                // no hot & low-risk pages.
                regions: vec![
                    RegionSpec::resident("site_locals", 6, 90.0),
                    RegionSpec::stream_rmw("lattice_a", 220, 2.73, 1),
                    RegionSpec::stream_rmw("lattice_b", 220, 2.73, 1),
                    RegionSpec::stream_read("obstacle_map", 480, 1.30, 1),
                    RegionSpec::input_data("lattice_init", 704, 6.0, 0.03, 1.56),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::Mcf => BenchProfile {
                name: "mcf",
                regions: vec![
                    RegionSpec::resident("simplex_locals", 6, 90.5),
                    RegionSpec::lookup_rw("node_array", 420, 2.21, 0.4, 0.1),
                    RegionSpec::lookup("arc_array", 340, 1.43, 0.3),
                    RegionSpec::hot_buffer("basket_scratch", 100, 1.4, 0.92),
                    RegionSpec::stream_out("tree_log", 180, 1.9),
                    RegionSpec::stream_read("cost_tables", 630, 1.37, 1),
                    RegionSpec::input_data("network_init", 900, 6.0, 0.03, 1.56),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::Bwaves => BenchProfile {
                name: "bwaves",
                regions: vec![
                    RegionSpec::resident("solver_locals", 6, 90.5),
                    RegionSpec::stream_rmw("wave_blocks", 420, 3.12, 1),
                    RegionSpec::stream_read("stencil_coeffs", 600, 1.49, 1),
                    RegionSpec::input_data("cube_init", 990, 6.0, 0.03, 1.56),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::Milc => BenchProfile {
                name: "milc",
                // Uniform access counts (alpha = 0) and the highest AVF.
                regions: vec![
                    RegionSpec::resident("su3_locals", 6, 90.0),
                    RegionSpec::lookup_rw("su3_links", 470, 2.34, 0.0, 0.05),
                    RegionSpec::stream_rmw("momenta", 200, 1.17, 1),
                    RegionSpec::stream_out("staples_out", 110, 1.4),
                    RegionSpec::stream_read("gauge_history", 630, 1.43, 1),
                    RegionSpec::input_data("lattice_init", 920, 6.0, 0.03, 1.49),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
            Benchmark::XSBench => BenchProfile {
                name: "xsbench",
                regions: vec![
                    RegionSpec::resident("lookup_locals", 6, 91.0),
                    RegionSpec::lookup("nuclide_grid", 580, 2.47, 0.3),
                    RegionSpec::lookup("unionized_idx", 60, 0.72, 0.9),
                    RegionSpec::stream_out("tally_results", 210, 2.0),
                    RegionSpec::stream_read("mat_specs", 630, 1.30, 1),
                    RegionSpec::input_data("grid_init", 1000, 6.0, 0.03, 1.56),
                ],
                gap_mean: 3,
                gap_spread: 1,
            },
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_construct_and_are_nonempty() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(!p.regions.is_empty(), "{b} has no regions");
            assert!(p.footprint_pages() > 100, "{b} footprint too small");
            assert!(p.footprint_pages() < 4000, "{b} footprint too large");
            let total_weight: f64 = p.regions.iter().map(|r| r.weight).sum();
            assert!(total_weight > 0.0);
            assert_eq!(p.name, b.name());
        }
    }

    #[test]
    fn traffic_budgets_are_normalized() {
        // Every profile's always-active weight should be near the 100-unit
        // budget the tuning methodology assumes.
        use crate::region::Phase;
        for b in Benchmark::ALL {
            let p = b.profile();
            let active: f64 = p
                .regions
                .iter()
                .filter(|r| matches!(r.phase, Phase::Always))
                .map(|r| r.weight)
                .sum();
            assert!(
                (80.0..115.0).contains(&active),
                "{b} active weight {active}"
            );
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(
            Benchmark::from_name("CACTUSadm"),
            Some(Benchmark::CactusADM)
        );
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn cactus_has_many_structures() {
        let p = Benchmark::CactusADM.profile();
        assert!(p.regions.len() >= 40, "cactusADM needs many structures");
    }

    #[test]
    fn every_profile_has_input_data_scan() {
        use crate::region::Phase;
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(
                p.regions
                    .iter()
                    .any(|r| matches!(r.phase, Phase::InitThenScan { .. })),
                "{b} lacks an input-data region"
            );
        }
    }

    #[test]
    fn region_names_unique_within_profile() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let mut names: Vec<_> = p.regions.iter().map(|r| r.name.clone()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), p.regions.len(), "{b} duplicate region names");
        }
    }
}
