//! Trace (de)serialization: a compact binary format for captured CPU-level
//! traces, so workloads can be recorded once and replayed elsewhere — the
//! same role PinPlay trace files play in the paper's methodology.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  "RAMPTRC1"                 8 bytes
//! count  u64                        number of records
//! repeat count times:
//!   inst_gap u32 | pc u64 | addr u64 | kind u8 (0 = read, 1 = write)
//! ```

use std::io::{self, Read, Write};

use ramp_sim::units::{AccessKind, Addr};

use crate::record::TraceRecord;

const MAGIC: &[u8; 8] = b"RAMPTRC1";

/// Writes `records` to `w` in the RAMP trace format.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_trace<W: Write>(mut w: W, records: &[TraceRecord]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in records {
        w.write_all(&r.inst_gap.to_le_bytes())?;
        w.write_all(&r.pc.to_le_bytes())?;
        w.write_all(&r.addr.0.to_le_bytes())?;
        w.write_all(&[u8::from(r.kind.is_write())])?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` if the magic or record encoding is malformed, and
/// propagates I/O errors from the underlying reader.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<TraceRecord>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a RAMP trace (bad magic)",
        ));
    }
    let mut n8 = [0u8; 8];
    r.read_exact(&mut n8)?;
    let n = u64::from_le_bytes(n8);
    let mut out = Vec::with_capacity(n.min(1 << 24) as usize);
    let mut rec = [0u8; 21];
    for _ in 0..n {
        r.read_exact(&mut rec)?;
        let inst_gap = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let pc = u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"));
        let addr = u64::from_le_bytes(rec[12..20].try_into().expect("8 bytes"));
        let kind = match rec[20] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("invalid access kind {other}"),
                ))
            }
        };
        out.push(TraceRecord {
            inst_gap,
            pc,
            addr: Addr(addr),
            kind,
        });
    }
    Ok(out)
}

/// Captures `n` records from a generator into a replayable vector.
pub fn capture(gen: &mut crate::gen::InstanceGen, n: usize) -> Vec<TraceRecord> {
    gen.take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Benchmark;
    use crate::InstanceGen;

    #[test]
    fn round_trips_generated_traces() {
        let mut gen = InstanceGen::new(Benchmark::Milc.profile(), 0, 42, 1_000_000);
        let records = capture(&mut gen, 5_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOTATRCE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_kind_byte() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            &[TraceRecord {
                inst_gap: 1,
                pc: 2,
                addr: Addr(64),
                kind: AccessKind::Read,
            }],
        )
        .unwrap();
        let last = buf.len() - 1;
        buf[last] = 9; // corrupt the kind byte
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let mut buf = Vec::new();
        write_trace(
            &mut buf,
            &[TraceRecord {
                inst_gap: 0,
                pc: 0,
                addr: Addr(0),
                kind: AccessKind::Write,
            }],
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }
}
