//! Shared simulation infrastructure for the RAMP workspace.
//!
//! This crate holds the small, dependency-free building blocks every other
//! RAMP crate uses:
//!
//! * [`units`] — strongly-typed addresses, pages, cache lines and cycle
//!   counts, plus the geometry constants (page size, line size) the whole
//!   simulator agrees on.
//! * [`stats`] — online statistics, Pearson correlation, histograms and
//!   geometric means used by the experiment harness.
//! * [`event`] — a deterministic discrete-event queue.
//! * [`rng`] — seeded random-number plumbing (every random decision in RAMP
//!   flows from a single root seed) and a Zipf sampler for skewed page
//!   popularity. Implemented in-tree (xoshiro256++/SplitMix64): the whole
//!   workspace builds with zero external dependencies.
//! * [`exec`] — a std-only work-stealing parallel executor that shards
//!   independent simulation runs across cores with deterministic,
//!   input-ordered results, plus stage timing and progress metrics.
//! * [`check`] — a deterministic property-testing mini-harness (the
//!   in-tree `proptest` replacement used by `tests/properties.rs`).
//! * [`codec`] — a hand-rolled little-endian binary codec (versioned
//!   framing, length-prefixed fields, FNV-1a checksums) backing the
//!   `ramp-serve` persistent run store.
//! * [`telemetry`] — a hierarchical stat registry (counters, gauges,
//!   histograms, ratios) with deterministic JSON/table serialization,
//!   shared by every simulator component for observability and
//!   golden-snapshot regression testing.
//! * [`chaos`] — a seeded software fault-injection registry
//!   (`RAMP_CHAOS=<seed>:<spec>`) threaded through the executor, run
//!   store, server and client for deterministic resilience testing.
//!
//! # Example
//!
//! ```
//! use ramp_sim::units::{Addr, PAGE_SIZE};
//! use ramp_sim::stats::pearson;
//!
//! let a = Addr(0x1234_5678);
//! assert_eq!(a.page().index() * PAGE_SIZE as u64, a.page_base().0);
//!
//! let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
//! assert!((r - 1.0).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod check;
pub mod codec;
pub mod event;
pub mod exec;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod units;

pub use event::EventQueue;
pub use rng::SimRng;
pub use units::{Addr, Cycle, LineAddr, PageId};
