//! Deterministic random-number plumbing.
//!
//! Every stochastic decision in RAMP (trace generation, fault injection,
//! Monte-Carlo trials) derives from a single root seed through
//! [`SimRng`], so whole experiments replay bit-for-bit. Child generators are
//! derived with a stream label so that adding randomness to one component
//! never perturbs another.
//!
//! The generator is implemented in-tree (xoshiro256++ state, expanded from
//! the seed with SplitMix64) so the workspace builds with zero external
//! dependencies and the streams are stable across toolchains forever.

/// The xoshiro256++ core: 256 bits of state, public-domain algorithm by
/// Blackman and Vigna. Small, fast, and passes BigCrush — more than enough
/// for simulation workloads.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the state with four successive SplitMix64 outputs, the
    /// initialization the xoshiro authors recommend.
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = mix64(x);
        }
        Xoshiro256pp { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A labeled, deterministic random-number generator.
///
/// ```
/// use ramp_sim::rng::SimRng;
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Children with different labels are decorrelated but reproducible.
/// let mut c1 = SimRng::from_seed(42).child("traces");
/// let mut c2 = SimRng::from_seed(42).child("faults");
/// assert_ne!(c1.next_u64(), c2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Creates a generator from a root seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            seed,
            inner: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator for the component `label`.
    ///
    /// The child's stream depends only on the parent's *seed* and the label,
    /// never on how much randomness the parent has already consumed.
    pub fn child(&self, label: &str) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        SimRng::from_seed(child_seed)
    }

    /// Derives an independent child generator for an indexed component
    /// (e.g. per-core trace streams).
    pub fn child_indexed(&self, label: &str, index: u64) -> SimRng {
        let child_seed = splitmix(self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index));
        SimRng::from_seed(child_seed)
    }

    /// The root seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The full generator state `(seed, xoshiro words)`, for
    /// checkpointing. Restoring via [`SimRng::from_state`] resumes the
    /// stream exactly where it left off.
    pub fn state(&self) -> (u64, [u64; 4]) {
        (self.seed, self.inner.s)
    }

    /// Rebuilds a generator from a state captured by [`SimRng::state`].
    pub fn from_state(seed: u64, s: [u64; 4]) -> Self {
        SimRng {
            seed,
            inner: Xoshiro256pp { s },
        }
    }

    /// A uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.inner.next_u64() >> 32) as u32
    }

    /// A uniformly random value in `[0, bound)` (Lemire's unbiased
    /// multiply-and-reject method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening multiply maps next_u64 onto [0, bound); rejecting the
        // low-product tail removes the modulo bias. The rejection threshold
        // (2^64 mod bound) is below `bound`, so a draw whose low half is at
        // least `bound` is accepted without computing the threshold — the
        // division runs only on the ~bound/2^64 tail, not per call.
        let mut m = (self.inner.next_u64() as u128) * (bound as u128);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = (self.inner.next_u64() as u128) * (bound as u128);
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly random `f64` in `[0, 1)` (53 high bits of a `u64`).
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A Poisson-distributed sample with mean `lambda`.
    ///
    /// Uses Knuth's product method for small lambda and a normal
    /// approximation (clamped at zero) for large lambda; adequate for fault
    /// arrival counts where lambda spans many orders of magnitude.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson mean must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.unit();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation N(lambda, lambda).
            let z = self.standard_normal();
            let v = lambda + z * lambda.sqrt();
            if v < 0.0 {
                0
            } else {
                v.round() as u64
            }
        }
    }

    /// A standard normal sample (Box-Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a geometric-like burst length in `[1, max]` with mean roughly
    /// `mean` (clamped). Useful for modeling bursty access runs.
    pub fn burst_len(&mut self, mean: f64, max: u64) -> u64 {
        assert!(max >= 1);
        let p = (1.0 / mean.max(1.0)).clamp(1e-9, 1.0);
        let mut n = 1;
        while n < max && !self.chance(p) {
            n += 1;
        }
        n
    }
}

/// A Zipf(α) sampler over `0..n` using inverse-CDF on a precomputed table.
///
/// Rank 0 is the most popular element. Used for skewed page popularity in
/// the synthetic workload generator.
///
/// ```
/// use ramp_sim::rng::{SimRng, Zipf};
/// let z = Zipf::new(100, 1.0);
/// let mut rng = SimRng::from_seed(7);
/// let mut hits0 = 0;
/// for _ in 0..1000 {
///     if z.sample(&mut rng) == 0 {
///         hits0 += 1;
///     }
/// }
/// assert!(hits0 > 100); // rank 0 dominates
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    /// Bucket index over `u`: `bucket[b]` is the first rank whose CDF value
    /// is `>= b / (bucket.len() - 1)`. Narrows the inverse-CDF search to a
    /// handful of ranks (usually zero or one comparison). Empty when the
    /// CDF is not strictly increasing, in which case `sample` falls back to
    /// the plain binary search.
    bucket: Vec<u32>,
}

impl Zipf {
    /// Buckets per rank in the index (clamped to [`Zipf::MAX_BUCKETS`]).
    const BUCKETS_PER_RANK: usize = 2;
    /// Upper bound on index size, to cap memory for huge rank counts.
    const MAX_BUCKETS: usize = 1 << 18;

    /// Builds a sampler over `n` ranks with exponent `alpha`.
    ///
    /// `alpha == 0` degenerates to the uniform distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(alpha >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        let strict = cdf.windows(2).all(|w| w[0] < w[1]);
        let bucket = if strict && n <= u32::MAX as usize {
            // Power-of-two bucket count: `u * k` and the edges `b / k` are
            // then exact in f64 (pure exponent scaling), so the computed
            // bucket is exactly floor(u * k) — no edge corrections needed
            // in `sample`.
            let k = (n * Self::BUCKETS_PER_RANK)
                .next_power_of_two()
                .min(Self::MAX_BUCKETS);
            let mut bucket = Vec::with_capacity(k + 1);
            // One merge walk: both the edges b/k and the CDF are ascending,
            // so each bucket[b] = partition_point(cdf, < b/k) is found by
            // advancing a single cursor.
            let mut i = 0usize;
            for b in 0..=k {
                let edge = b as f64 / k as f64;
                while i < n && cdf[i] < edge {
                    i += 1;
                }
                bucket.push(i as u32);
            }
            bucket
        } else {
            Vec::new()
        };
        Zipf { cdf, bucket }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Draws a rank in `0..n`.
    ///
    /// With a strictly increasing CDF the answer is the partition point of
    /// `cdf[i] < u`, which the bucket index brackets to `[lo, hi]`; the
    /// narrowed search returns the identical rank the full binary search
    /// would (the partition point is unique), it just skips the cold
    /// probes of a large CDF table.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        let last = self.cdf.len() - 1;
        if !self.bucket.is_empty() {
            // k is a power of two, so `u * k` is exact and truncation is
            // exactly floor(u * k): with u in [0, 1), b is in [0, k) and
            // the bucket's edges bracket u by construction.
            let k = self.bucket.len() - 1;
            let b = (u * k as f64) as usize;
            let lo = self.bucket[b] as usize;
            let hi = self.bucket[b + 1] as usize;
            let i = lo + self.cdf[lo..hi].partition_point(|&p| p < u);
            return i.min(last);
        }
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(last),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn splitmix(x: u64) -> u64 {
    mix64(x.wrapping_add(0x9e37_79b9_7f4a_7c15))
}

/// The SplitMix64 finalizer: a strong 64-bit bijective mixer. Exposed so
/// other subsystems (e.g. [`crate::exec`]'s per-task seed derivation) can
/// decorrelate integer streams the same way [`SimRng::child_indexed`] does.
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn children_independent_of_parent_consumption() {
        let mut parent1 = SimRng::from_seed(9);
        let parent2 = SimRng::from_seed(9);
        let _ = parent1.next_u64(); // consume some randomness
        let mut c1 = parent1.child("x");
        let mut c2 = parent2.child("x");
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn indexed_children_distinct() {
        let root = SimRng::from_seed(5);
        let mut a = root.child_indexed("core", 0);
        let mut b = root.child_indexed("core", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        SimRng::from_seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SimRng::from_seed(13);
        for &lambda in &[0.5, 5.0, 100.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda={lambda} mean={mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn zipf_is_monotonically_skewed() {
        let z = Zipf::new(50, 1.2);
        let mut rng = SimRng::from_seed(17);
        let mut counts = vec![0u64; 50];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
        // pmf sums to one.
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = SimRng::from_seed(23);
        let mut counts = vec![0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_500.0);
        }
    }

    #[test]
    fn zipf_bucket_index_matches_plain_binary_search() {
        // The bucket index must return exactly the rank the unindexed
        // binary search would, for every draw.
        for &(n, alpha) in &[(1usize, 1.0), (3, 0.0), (50, 1.2), (4096, 0.8)] {
            let indexed = Zipf::new(n, alpha);
            assert!(
                n == 1 || !indexed.bucket.is_empty(),
                "strictly-increasing CDF must build an index (n={n})"
            );
            let mut plain = indexed.clone();
            plain.bucket = Vec::new();
            let mut rng_a = SimRng::from_seed(0xfeed);
            let mut rng_b = SimRng::from_seed(0xfeed);
            for _ in 0..20_000 {
                assert_eq!(indexed.sample(&mut rng_a), plain.sample(&mut rng_b));
            }
        }
    }

    #[test]
    fn burst_len_bounds() {
        let mut rng = SimRng::from_seed(29);
        for _ in 0..100 {
            let b = rng.burst_len(4.0, 16);
            assert!((1..=16).contains(&b));
        }
    }
}
