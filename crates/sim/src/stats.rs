//! Statistics helpers used by the experiment harness.
//!
//! Everything here is small, allocation-light and deterministic: online
//! mean/variance ([`OnlineStats`]), Pearson correlation (used for the
//! hotness-AVF and write-ratio-AVF correlations of Figures 6 and 9),
//! fixed-bin histograms (Figure 9b) and geometric means (cross-workload
//! IPC/SER summaries).

/// Online mean / variance / min / max accumulator (Welford's algorithm).
///
/// ```
/// use ramp_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw accumulator fields `(n, mean, m2, min, max)`, for
    /// checkpointing with exact `f64` bit patterns.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::raw_parts`] output.
    pub fn from_raw_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either sample has zero variance (correlation undefined).
///
/// ```
/// use ramp_sim::stats::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]).unwrap();
/// assert!((r + 1.0).abs() < 1e-12);
/// assert!(pearson(&[1.0], &[1.0]).is_none());
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Geometric mean of a sample of positive values.
///
/// Returns `None` if the slice is empty or any value is non-positive.
/// Used for cross-workload IPC and SER ratio summaries, matching common
/// architecture-paper practice.
///
/// ```
/// use ramp_sim::stats::geomean;
/// assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Arithmetic mean of a sample; `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// A fixed-width-bin histogram over `[lo, hi)`.
///
/// Out-of-range observations are clamped into the first/last bin, so every
/// pushed value is counted (matching how Figure 9b bins write ratios).
///
/// ```
/// use ramp_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 1.0, 5);
/// h.push(0.05);
/// h.push(0.99);
/// h.push(2.0); // clamped into the last bin
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation (clamped into range).
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterator over `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
    }
}

/// Returns the indices that sort `values` in descending order.
///
/// Ties break by ascending index so the order is fully deterministic.
/// This is the primitive behind every "top-N hottest pages" selection.
///
/// ```
/// use ramp_sim::stats::rank_descending;
/// assert_eq!(rank_descending(&[1.0, 3.0, 2.0, 3.0]), vec![1, 3, 2, 0]);
/// ```
pub fn rank_descending(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

/// A percentile of a sample via nearest-rank on a sorted copy.
///
/// `q` is in `[0, 1]`. Returns `None` for an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    Some(v[rank])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: OnlineStats = data.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn pearson_basic_cases() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        // Zero variance -> undefined.
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        // Mismatched lengths -> undefined.
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn pearson_uncorrelated_is_near_zero() {
        // Symmetric pattern with zero covariance.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, -1.0, 1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 1e-9);
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
        assert!((mean(&[1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-5.0);
        h.push(50.0);
        assert_eq!(h.total(), 12);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        let bins: Vec<_> = h.iter().collect();
        assert_eq!(bins.len(), 10);
        assert!((bins[0].0 - 0.0).abs() < 1e-12);
        assert!((bins[9].1 - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn rank_descending_with_ties() {
        let r = rank_descending(&[5.0, 5.0, 1.0]);
        assert_eq!(r, vec![0, 1, 2]);
        assert!(rank_descending(&[]).is_empty());
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [3.0, 1.0, 2.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 0.5), Some(3.0));
        assert_eq!(percentile(&xs, 1.0), Some(5.0));
        assert_eq!(percentile(&[], 0.5), None);
    }
}
