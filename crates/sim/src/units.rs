//! Strongly-typed units shared across the simulator.
//!
//! The whole workspace agrees on a fixed memory geometry: 4 KiB pages made of
//! 64 B cache lines, matching the paper's AVF granularity (page-level
//! placement decisions, line-level ACE tracking).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a memory page in bytes (4 KiB, the placement granularity).
pub const PAGE_SIZE: usize = 4096;
/// Size of a cache line in bytes (64 B, the access and AVF granularity).
pub const LINE_SIZE: usize = 64;
/// Number of cache lines per page.
pub const LINES_PER_PAGE: usize = PAGE_SIZE / LINE_SIZE;
/// Number of bits in a page (used by the AVF denominator of Equation 1).
pub const PAGE_BITS: u64 = (PAGE_SIZE as u64) * 8;

/// A byte address in the simulated physical address space.
///
/// `Addr` is a transparent newtype over `u64`; arithmetic helpers derive the
/// page and line containing the address.
///
/// ```
/// use ramp_sim::units::{Addr, PAGE_SIZE};
/// let a = Addr(PAGE_SIZE as u64 + 100);
/// assert_eq!(a.page().index(), 1);
/// assert_eq!(a.line_in_page(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / PAGE_SIZE as u64)
    }

    /// The cache line containing this address (global line number).
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE as u64)
    }

    /// Index of the line within its page (`0..LINES_PER_PAGE`).
    #[inline]
    pub fn line_in_page(self) -> usize {
        ((self.0 % PAGE_SIZE as u64) / LINE_SIZE as u64) as usize
    }

    /// First byte address of the page containing this address.
    #[inline]
    pub fn page_base(self) -> Addr {
        Addr(self.0 - self.0 % PAGE_SIZE as u64)
    }

    /// First byte address of the line containing this address.
    #[inline]
    pub fn line_base(self) -> Addr {
        Addr(self.0 - self.0 % LINE_SIZE as u64)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

/// A 4 KiB page number (physical address divided by [`PAGE_SIZE`]).
///
/// Pages are the unit of placement and migration decisions.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl PageId {
    /// The raw page index.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }

    /// Base byte address of this page.
    #[inline]
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * PAGE_SIZE as u64)
    }

    /// Address of the `line`-th cache line of this page.
    ///
    /// # Panics
    ///
    /// Panics if `line >= LINES_PER_PAGE`.
    #[inline]
    pub fn line_addr(self, line: usize) -> Addr {
        assert!(line < LINES_PER_PAGE, "line index {line} out of page");
        Addr(self.0 * PAGE_SIZE as u64 + (line * LINE_SIZE) as u64)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageId({})", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A global 64 B cache-line number (physical address divided by [`LINE_SIZE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The page containing this line.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 / LINES_PER_PAGE as u64)
    }

    /// Index of the line within its page.
    #[inline]
    pub fn line_in_page(self) -> usize {
        (self.0 % LINES_PER_PAGE as u64) as usize
    }

    /// Base byte address of this line.
    #[inline]
    pub fn base_addr(self) -> Addr {
        Addr(self.0 * LINE_SIZE as u64)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({})", self.0)
    }
}

/// A CPU-clock cycle count.
///
/// All timing in RAMP is expressed in CPU cycles (the paper's 3.2 GHz core
/// clock); memory controllers convert to their own bus clock internally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Zero cycles (simulation start).
    pub const ZERO: Cycle = Cycle(0);

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// The later of two cycle counts.
    #[inline]
    pub fn max(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.max(rhs.0))
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl From<u64> for Cycle {
    fn from(v: u64) -> Self {
        Cycle(v)
    }
}

/// Whether a memory access reads or writes its cache line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A read (demand load or instruction fetch miss / fill).
    Read,
    /// A write (store writeback to memory).
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "R"),
            AccessKind::Write => write!(f, "W"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_and_line_round_trip() {
        let a = Addr(3 * PAGE_SIZE as u64 + 5 * LINE_SIZE as u64 + 7);
        assert_eq!(a.page(), PageId(3));
        assert_eq!(a.line_in_page(), 5);
        assert_eq!(a.page_base(), Addr(3 * PAGE_SIZE as u64));
        assert_eq!(
            a.line_base(),
            Addr(3 * PAGE_SIZE as u64 + 5 * LINE_SIZE as u64)
        );
        assert_eq!(a.page_offset(), 5 * LINE_SIZE + 7);
    }

    #[test]
    fn page_line_addr() {
        let p = PageId(10);
        assert_eq!(p.line_addr(0), p.base_addr());
        assert_eq!(p.line_addr(63).line_in_page(), 63);
        assert_eq!(p.line_addr(63).page(), p);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn page_line_addr_out_of_range_panics() {
        PageId(0).line_addr(LINES_PER_PAGE);
    }

    #[test]
    fn line_addr_navigation() {
        let l = LineAddr(LINES_PER_PAGE as u64 * 2 + 3);
        assert_eq!(l.page(), PageId(2));
        assert_eq!(l.line_in_page(), 3);
        assert_eq!(l.base_addr().line(), l);
    }

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle(10);
        let b = Cycle(4);
        assert_eq!(a + b, Cycle(14));
        assert_eq!(a - b, Cycle(6));
        assert_eq!(b.saturating_sub(a), Cycle::ZERO);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += 5;
        assert_eq!(c, Cycle(15));
    }

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(PAGE_BITS, 4096 * 8);
    }

    #[test]
    fn debug_impls_nonempty() {
        assert!(!format!("{:?}", Addr(0)).is_empty());
        assert!(!format!("{:?}", PageId(0)).is_empty());
        assert!(!format!("{:?}", Cycle(0)).is_empty());
        assert_eq!(format!("{}", AccessKind::Read), "R");
        assert_eq!(format!("{}", AccessKind::Write), "W");
    }
}
