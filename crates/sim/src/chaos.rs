//! Deterministic, seeded software fault injection ("chaos") for the
//! infrastructure layers of the reproduction.
//!
//! The paper's thesis is that a system must stay correct under faults:
//! FaultSim injects DRAM faults and the ECC layer corrects or detects
//! them. This module gives our *own* infrastructure (executor, run
//! store, HTTP server, client) the same treatment — a software fault
//! model whose every decision flows from an explicit seed, so a failing
//! chaos run replays bit-for-bit.
//!
//! Chaos is configured with `RAMP_CHAOS=<seed>:<spec>` where `<spec>`
//! is a comma-separated list of knobs:
//!
//! | knob        | meaning                                             |
//! |-------------|-----------------------------------------------------|
//! | `io=P`      | probability of an injected I/O fault (failed store  |
//! |             | write, read error, post-write corruption)           |
//! | `panic=P`   | probability a simulation task panics                |
//! | `net=P`     | probability a server response is reset mid-write    |
//! | `slow=D`    | injected delay (e.g. `20ms`, `1s`) at slow points   |
//! | `retries=N` | executor retry budget for panicked tasks (default 2)|
//!
//! e.g. `RAMP_CHAOS=7:io=0.05,panic=0.01,net=0.1,slow=20ms`.
//!
//! Injection points are *named sites* (`"store.write"`,
//! `"server.response"`, ...): each decision hashes the seed, the site
//! name and a per-kind roll counter through the same SplitMix64 mixer
//! the RNG subsystem uses, so distinct sites draw decorrelated streams
//! and the same seed always injects the same faults at the same rolls.
//!
//! Sites currently wired in (the set is open — a site is just a name):
//! `store.read` / `store.write` / `store.corrupt` (file-mode run
//! store), `wal.append` / `wal.torn` / `wal.manifest` /
//! `wal.manifest.corrupt` (WAL-mode segments and manifest; `wal.torn`
//! truncates the freshly appended record to simulate a kill mid-append,
//! `wal.manifest.corrupt` damages the manifest bytes before the atomic
//! swap), `sim.checkpoint` (kill after a durable checkpoint),
//! `server.job` / `server.response` (dispatcher and response writer),
//! `server.worker` (panic a worker thread outside its per-job
//! isolation so the supervisor's restart path is exercised), and the
//! shard router's `router.upstream` (fault a proxied upstream exchange
//! so per-request failover runs), `router.handoff` (panic a hinted-
//! handoff delivery so the redelivery loop's isolation is exercised)
//! and `router.probe` (fail a health probe so shards flap dark/live).
//!
//! With `RAMP_CHAOS` unset, [`global`] returns `None` and every
//! injection point compiles down to a branch-not-taken — the
//! determinism and warm-start guarantees of the experiment binaries are
//! untouched.
//!
//! ```
//! use ramp_sim::chaos::{Chaos, FaultKind};
//!
//! let chaos = Chaos::parse("7:io=0.5").unwrap();
//! let hits: u32 = (0..100)
//!     .map(|_| chaos.roll(FaultKind::Io, "store.write") as u32)
//!     .sum();
//! assert!(hits > 20 && hits < 80); // seeded coin at p = 0.5
//!
//! // Same seed, same sites => identical decisions.
//! let replay = Chaos::parse("7:io=0.5").unwrap();
//! let replayed: u32 = (0..100)
//!     .map(|_| replay.roll(FaultKind::Io, "store.write") as u32)
//!     .sum();
//! assert_eq!(hits, replayed);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::codec::fnv1a64;
use crate::rng::mix64;

/// Environment variable enabling chaos injection (`<seed>:<spec>`).
pub const ENV_CHAOS: &str = "RAMP_CHAOS";

/// Default executor retry budget for panicked tasks under chaos.
pub const DEFAULT_RETRIES: u32 = 2;

/// The kinds of software faults the registry can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A storage-layer fault: failed write, read error, or post-write
    /// corruption of an on-disk entry.
    Io = 0,
    /// A panic inside a simulation task.
    Panic = 1,
    /// A network fault: the peer's socket is reset mid-response.
    Net = 2,
    /// An injected delay (slow read, queue stall).
    Slow = 3,
}

const KINDS: [FaultKind; 4] = [
    FaultKind::Io,
    FaultKind::Panic,
    FaultKind::Net,
    FaultKind::Slow,
];

impl FaultKind {
    /// Stable lower-case label (spec key and telemetry name).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::Panic => "panic",
            FaultKind::Net => "net",
            FaultKind::Slow => "slow",
        }
    }
}

/// A seeded fault-injection registry.
///
/// Cheap to share (`Arc<Chaos>`); all counters are atomics, so one
/// registry can serve every thread of a server or executor stage.
#[derive(Debug)]
pub struct Chaos {
    seed: u64,
    rates: [f64; 4],
    slow: Duration,
    retries: u32,
    rolls: [AtomicU64; 4],
    injected: [AtomicU64; 4],
}

impl Chaos {
    /// Parses the full `<seed>:<spec>` form of [`ENV_CHAOS`].
    pub fn parse(s: &str) -> Result<Chaos, String> {
        let (seed_str, spec) = s
            .split_once(':')
            .ok_or_else(|| format!("expected '<seed>:<spec>', got {s:?}"))?;
        let seed = parse_seed(seed_str.trim())?;
        Chaos::from_spec(seed, spec)
    }

    /// Builds a registry from an explicit seed and a `<spec>` string
    /// (`io=0.05,panic=0.01,net=0.1,slow=20ms,retries=3`).
    pub fn from_spec(seed: u64, spec: &str) -> Result<Chaos, String> {
        let mut rates = [0.0f64; 4];
        let mut slow = Duration::ZERO;
        let mut retries = DEFAULT_RETRIES;
        for item in spec.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (key, value) = item
                .split_once('=')
                .ok_or_else(|| format!("expected 'key=value', got {item:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "io" | "panic" | "net" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("{key}: bad probability {value:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("{key}: probability {p} outside [0, 1]"));
                    }
                    let kind = match key {
                        "io" => FaultKind::Io,
                        "panic" => FaultKind::Panic,
                        _ => FaultKind::Net,
                    };
                    rates[kind as usize] = p;
                }
                "slow" => {
                    slow = parse_duration(value)?;
                    rates[FaultKind::Slow as usize] = 1.0;
                }
                "retries" => {
                    retries = value
                        .parse()
                        .map_err(|_| format!("retries: bad count {value:?}"))?;
                }
                _ => return Err(format!("unknown chaos knob {key:?}")),
            }
        }
        Ok(Chaos {
            seed,
            rates,
            slow,
            retries,
            rolls: Default::default(),
            injected: Default::default(),
        })
    }

    /// The root seed of every injection decision.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured injection probability of `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind as usize]
    }

    /// The injected delay of [`FaultKind::Slow`] sites.
    pub fn slow_delay(&self) -> Duration {
        self.slow
    }

    /// The executor retry budget for panicked tasks.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// Decides whether to inject a `kind` fault at the named `site`.
    ///
    /// Deterministic: the decision is a hash of the seed, the site name
    /// and the per-kind roll counter — independent of wall clock and of
    /// every other kind's rolls. Returns `true` (and counts the
    /// injection) when the fault fires.
    pub fn roll(&self, kind: FaultKind, site: &str) -> bool {
        let k = kind as usize;
        let p = self.rates[k];
        if p <= 0.0 {
            return false;
        }
        let n = self.rolls[k].fetch_add(1, Ordering::Relaxed);
        let h = mix64(
            self.seed
                ^ fnv1a64(site.as_bytes())
                ^ mix64(n.wrapping_add(1) ^ ((k as u64 + 1) << 56)),
        );
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let hit = unit < p;
        if hit {
            self.injected[k].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Sleeps for the configured delay when a [`FaultKind::Slow`] fault
    /// fires at `site`.
    pub fn maybe_slow(&self, site: &str) {
        if self.slow > Duration::ZERO && self.roll(FaultKind::Slow, site) {
            std::thread::sleep(self.slow);
        }
    }

    /// Panics with a recognizable message when a [`FaultKind::Panic`]
    /// fault fires at `site`. Callers are expected to sit under a
    /// `catch_unwind` boundary (the executor and server dispatcher do).
    pub fn maybe_panic(&self, site: &str) {
        if self.roll(FaultKind::Panic, site) {
            panic!("chaos: injected panic at {site}");
        }
    }

    /// Total decisions taken for `kind` so far.
    pub fn rolls(&self, kind: FaultKind) -> u64 {
        self.rolls[kind as usize].load(Ordering::Relaxed)
    }

    /// Faults actually injected for `kind` so far.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind as usize].load(Ordering::Relaxed)
    }

    /// One-line human description of the configuration.
    pub fn describe(&self) -> String {
        format!(
            "seed={} io={} panic={} net={} slow={:?} retries={}",
            self.seed,
            self.rates[FaultKind::Io as usize],
            self.rates[FaultKind::Panic as usize],
            self.rates[FaultKind::Net as usize],
            self.slow,
            self.retries,
        )
    }

    /// Exports roll/injection counters into `scope` of `reg` and marks
    /// the scope volatile (injection counts are process observability,
    /// never part of a deterministic result document).
    pub fn export_telemetry(&self, reg: &mut crate::telemetry::StatRegistry, scope: &str) {
        for kind in KINDS {
            reg.counter_add(scope, &format!("rolls_{}", kind.label()), self.rolls(kind));
            reg.counter_add(
                scope,
                &format!("injected_{}", kind.label()),
                self.injected(kind),
            );
        }
        reg.set_volatile(scope);
    }
}

/// The process-wide registry configured by [`ENV_CHAOS`], parsed once.
///
/// Returns `None` when the variable is unset, empty, `off`/`0`, or
/// malformed (a malformed spec is reported to stderr and ignored rather
/// than aborting an experiment run).
pub fn global() -> Option<Arc<Chaos>> {
    static GLOBAL: OnceLock<Option<Arc<Chaos>>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let v = std::env::var(ENV_CHAOS).ok()?;
            let v = v.trim();
            if v.is_empty() || v.eq_ignore_ascii_case("off") || v == "0" {
                return None;
            }
            match Chaos::parse(v) {
                Ok(chaos) => {
                    eprintln!("[chaos] enabled: {}", chaos.describe());
                    Some(Arc::new(chaos))
                }
                Err(e) => {
                    eprintln!("[chaos] ignoring {ENV_CHAOS}={v:?}: {e}");
                    None
                }
            }
        })
        .clone()
}

/// Extracts the human-readable message of a caught panic payload
/// (`&'static str` and `String` payloads; anything else gets a fixed
/// placeholder). Shared by the executor's typed task errors and the
/// server's failed-job states.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("bad chaos seed {s:?}"))
}

fn parse_duration(s: &str) -> Result<Duration, String> {
    let bad = || format!("bad duration {s:?} (expected e.g. 20ms, 1s, 500us)");
    let (digits, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic()).ok_or_else(bad)?);
    let n: u64 = digits.trim().parse().map_err(|_| bad())?;
    match unit {
        "us" => Ok(Duration::from_micros(n)),
        "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_spec() {
        let c = Chaos::parse("0x2a:io=0.05,panic=0.01,net=0.1,slow=20ms,retries=5").unwrap();
        assert_eq!(c.seed(), 42);
        assert_eq!(c.rate(FaultKind::Io), 0.05);
        assert_eq!(c.rate(FaultKind::Panic), 0.01);
        assert_eq!(c.rate(FaultKind::Net), 0.1);
        assert_eq!(c.slow_delay(), Duration::from_millis(20));
        assert_eq!(c.retries(), 5);
        assert!(c.describe().contains("seed=42"));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Chaos::parse("no-seed").is_err());
        assert!(Chaos::parse("x:io=0.1").is_err());
        assert!(Chaos::parse("1:io=1.5").is_err());
        assert!(Chaos::parse("1:io=-0.5").is_err());
        assert!(Chaos::parse("1:bogus=0.1").is_err());
        assert!(Chaos::parse("1:slow=20").is_err());
        assert!(Chaos::parse("1:slow=xms").is_err());
        assert!(Chaos::parse("1:io").is_err());
        assert!(Chaos::parse("1:retries=x").is_err());
    }

    #[test]
    fn empty_spec_injects_nothing() {
        let c = Chaos::from_spec(1, "").unwrap();
        for kind in KINDS {
            for _ in 0..50 {
                assert!(!c.roll(kind, "anywhere"));
            }
        }
        assert_eq!(c.injected(FaultKind::Io), 0);
        c.maybe_slow("anywhere"); // no delay configured: returns instantly
        c.maybe_panic("anywhere"); // p = 0: never panics
    }

    #[test]
    fn decisions_are_seeded_and_site_decorrelated() {
        let a = Chaos::from_spec(9, "io=0.5").unwrap();
        let b = Chaos::from_spec(9, "io=0.5").unwrap();
        let seq = |c: &Chaos, site: &str| -> Vec<bool> {
            (0..64).map(|_| c.roll(FaultKind::Io, site)).collect()
        };
        assert_eq!(seq(&a, "store.write"), seq(&b, "store.write"));
        // A different site under the same seed draws a different stream.
        let c = Chaos::from_spec(9, "io=0.5").unwrap();
        assert_ne!(seq(&a, "store.read"), seq(&c, "store.write"));
        // A different seed draws a different stream.
        let d = Chaos::from_spec(10, "io=0.5").unwrap();
        assert_ne!(seq(&b, "store.write"), seq(&d, "store.write"));
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let c = Chaos::from_spec(3, "net=1.0").unwrap();
        for _ in 0..20 {
            assert!(c.roll(FaultKind::Net, "server.response"));
            assert!(!c.roll(FaultKind::Io, "store.write"));
        }
        assert_eq!(c.injected(FaultKind::Net), 20);
        assert_eq!(c.rolls(FaultKind::Net), 20);
        assert_eq!(c.rolls(FaultKind::Io), 0); // p = 0 burns no rolls
    }

    #[test]
    fn injected_panic_is_catchable_and_classified() {
        let c = Chaos::from_spec(5, "panic=1.0").unwrap();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.maybe_panic("exec.task")))
                .expect_err("must panic");
        let msg = panic_message(caught.as_ref());
        assert_eq!(msg, "chaos: injected panic at exec.task");
        assert_eq!(c.injected(FaultKind::Panic), 1);
    }

    #[test]
    fn panic_message_covers_payload_shapes() {
        assert_eq!(panic_message(&"static str"), "static str");
        assert_eq!(panic_message(&String::from("owned")), "owned");
        assert_eq!(panic_message(&42u64), "non-string panic payload");
    }

    #[test]
    fn telemetry_export_is_volatile() {
        let c = Chaos::from_spec(1, "io=1.0").unwrap();
        c.roll(FaultKind::Io, "x");
        let mut reg = crate::telemetry::StatRegistry::new();
        c.export_telemetry(&mut reg, "chaos");
        let full = reg.snapshot_full();
        assert_eq!(
            full.get("chaos", "injected_io")
                .and_then(|s| s.as_counter()),
            Some(1)
        );
        // Volatile scopes never reach the deterministic snapshot.
        assert!(reg.snapshot().get("chaos", "injected_io").is_none());
    }

    #[test]
    fn duration_units() {
        assert_eq!(parse_duration("500us").unwrap(), Duration::from_micros(500));
        assert_eq!(parse_duration("20ms").unwrap(), Duration::from_millis(20));
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert!(parse_duration("20").is_err());
        assert!(parse_duration("ms").is_err());
    }
}
