//! An in-tree property-testing mini-harness.
//!
//! Replaces the external `proptest` dependency with a deterministic,
//! SplitMix64-driven case generator: each property runs `N` cases (256 by
//! default), every case is seeded independently, and a failing case prints
//! its seed so it can be replayed in isolation.
//!
//! * `RAMP_PROP_CASES=n` overrides the case count.
//! * `RAMP_PROP_SEED=s` replays exactly one case with seed `s`.
//!
//! ```
//! use ramp_sim::check::{check, Gen};
//!
//! check("addition commutes", |g: &mut Gen| {
//!     let (a, b) = (g.u64_below(1000), g.u64_below(1000));
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Shrinking is intentionally omitted: cases are generated small (ranged
//! draws, bounded collection lengths), and the printed seed makes any
//! failure a one-line reproduction.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::mix64;
use crate::SimRng;

/// Default number of cases per property.
pub const DEFAULT_CASES: u64 = 256;

/// The per-case input source: a seeded [`SimRng`] with draw helpers
/// mirroring the `proptest` strategies the seed suite used.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// A generator for one case seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: SimRng::from_seed(seed),
        }
    }

    /// An arbitrary `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A `u64` in `[0, bound)`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.below(bound)
    }

    /// A `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.below(hi - lo)
    }

    /// A `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A `u8` in `[lo, hi]` (inclusive, so `0..=255` is expressible).
    pub fn u8_in_inclusive(&mut self, lo: u8, hi: u8) -> u8 {
        assert!(lo <= hi);
        (lo as u64 + self.rng.below(hi as u64 - lo as u64 + 1)) as u8
    }

    /// An arbitrary `bool`.
    pub fn bool(&mut self) -> bool {
        self.rng.next_u64() & 1 == 1
    }

    /// An `f64` uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi);
        lo + self.rng.unit() * (hi - lo)
    }

    /// A `Vec` whose length is drawn from `[min_len, max_len)` and whose
    /// elements are produced by `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }

    /// A reference to a uniformly drawn element of `slice`.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.rng.below(slice.len() as u64) as usize]
    }
}

fn cases_from_env() -> u64 {
    std::env::var("RAMP_PROP_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .map_or(DEFAULT_CASES, |n: u64| n.max(1))
}

/// Runs `prop` over [`DEFAULT_CASES`] deterministic cases (or
/// `RAMP_PROP_CASES`); a failing case panics after printing its replay
/// seed. `RAMP_PROP_SEED` replays a single case instead.
///
/// The property signals failure by panicking (use the standard `assert!`
/// family).
pub fn check(name: &str, prop: impl Fn(&mut Gen)) {
    check_n(name, cases_from_env(), prop);
}

/// [`check`] with an explicit case count (still overridden by the
/// `RAMP_PROP_SEED` single-case replay).
pub fn check_n(name: &str, cases: u64, prop: impl Fn(&mut Gen)) {
    if let Ok(v) = std::env::var("RAMP_PROP_SEED") {
        let seed: u64 = v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("RAMP_PROP_SEED must be a u64, got {v:?}"));
        eprintln!("[check] replaying property {name:?} with seed {seed}");
        prop(&mut Gen::from_seed(seed));
        return;
    }
    // Case seeds derive from the property name so distinct properties
    // explore decorrelated inputs, but every run of the same property is
    // identical (no time- or pointer-dependent seeding).
    let root = {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    };
    for case in 0..cases {
        let seed = mix64(root ^ mix64(case.wrapping_add(1)));
        let outcome = catch_unwind(AssertUnwindSafe(|| prop(&mut Gen::from_seed(seed))));
        if let Err(payload) = outcome {
            eprintln!(
                "[check] property {name:?} FAILED at case {case}/{cases} \
                 (replay: RAMP_PROP_SEED={seed})"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let counter = AtomicU64::new(0);
        check_n("counts", 100, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn cases_are_deterministic() {
        use std::sync::Mutex;
        let a = Mutex::new(Vec::new());
        check_n("det", 16, |g| a.lock().unwrap().push(g.u64()));
        let b = Mutex::new(Vec::new());
        check_n("det", 16, |g| b.lock().unwrap().push(g.u64()));
        assert_eq!(*a.lock().unwrap(), *b.lock().unwrap());
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        use std::sync::Mutex;
        let a = Mutex::new(Vec::new());
        check_n("stream-a", 4, |g| a.lock().unwrap().push(g.u64()));
        let b = Mutex::new(Vec::new());
        check_n("stream-b", 4, |g| b.lock().unwrap().push(g.u64()));
        assert_ne!(*a.lock().unwrap(), *b.lock().unwrap());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn failing_property_panics_with_original_message() {
        check_n("fails", 64, |g| {
            assert!(g.u64() % 2 == 0, "odd");
        });
    }

    #[test]
    fn ranged_draws_respect_bounds() {
        check_n("ranges", 64, |g| {
            let v = g.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let u = g.usize_in(0, 3);
            assert!(u < 3);
            let f = g.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let b = g.u8_in_inclusive(1, 255);
            assert!(b >= 1);
            let vec = g.vec(1, 5, |g| g.bool());
            assert!((1..5).contains(&vec.len()));
            let x = *g.pick(&[1, 2, 3]);
            assert!((1..=3).contains(&x));
        });
    }
}
