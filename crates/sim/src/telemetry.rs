//! Cross-crate observability: a hierarchical, deterministic stat registry.
//!
//! Every component of the simulator (DRAM controllers, the cache
//! hierarchy, the migration engine, the core model, the parallel runner)
//! exports its counters into a [`StatRegistry`]: named *scopes* (dotted
//! paths such as `dram.hbm.ch0`) holding typed [`Stat`]s — monotone
//! counters, point-in-time gauges, fixed-bin histograms
//! ([`BinHistogram`]) and `num/den` ratio stats.
//!
//! The registry supports:
//!
//! * **Epoch snapshotting** — [`StatRegistry::mark_epoch`] records a
//!   labelled [`Snapshot`] of the current state, so interval-level series
//!   (per-epoch IPC, per-interval migrations) can be inspected after a
//!   run. Counters are monotone across epochs by construction.
//! * **Merging** — [`StatRegistry::merge_from`] combines two registries
//!   (counters/ratios/histogram bins add; gauges last-write-win), which
//!   is how per-shard registries from parallel runs accumulate into one.
//! * **Deterministic serialization** — [`Snapshot::to_json`] and
//!   [`Snapshot::to_table`] are hand-rolled writers (no external
//!   dependencies) with stable key ordering and no timestamps, so two
//!   runs of the same simulation produce byte-identical output at any
//!   thread count. This is what makes golden-snapshot regression testing
//!   possible (`tests/golden_stats.rs`).
//!
//! Scopes that hold wall-clock or scheduling-dependent data (e.g. the
//! executor's steal counts) are marked *volatile* via
//! [`StatRegistry::set_volatile`]; the default [`StatRegistry::snapshot`]
//! excludes them, [`StatRegistry::snapshot_full`] includes them.
//!
//! ```
//! use ramp_sim::telemetry::StatRegistry;
//!
//! let mut reg = StatRegistry::new();
//! reg.counter_add("dram.hbm.ch0", "row_hits", 42);
//! reg.ratio_add("dram.hbm", "row_hit_ratio", 42, 50);
//! reg.observe("dram.hbm.ch0", "read_q_occupancy", 0.0, 32.0, 32, 3.0);
//! let snap = reg.snapshot();
//! assert!(snap.to_json().contains("\"row_hits\""));
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// A fixed-geometry histogram with `u64` bin counts over `[lo, hi)`.
///
/// Out-of-range observations are clamped into the first/last bin so the
/// invariant `total == counts.iter().sum()` always holds (every pushed
/// value is counted exactly once).
#[derive(Clone, Debug, PartialEq)]
pub struct BinHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl BinHistogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        BinHistogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (clamped into range).
    pub fn observe(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        // `as i64` truncates toward zero rather than flooring, but the two
        // only differ for negative non-integers, which the clamp maps to
        // bin 0 either way (NaN and ±inf saturate identically too) — and
        // the cast avoids a libm floor call on this hot path.
        let idx = ((t * bins as f64) as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Lower bound of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations (equals the sum of all bins).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Reconstructs a histogram from serialized parts (the inverse of
    /// reading [`Self::lo`], [`Self::hi`] and [`Self::counts`]); the
    /// total is recomputed from the bins.
    ///
    /// Returns `None` instead of panicking when the parts are not a valid
    /// geometry (no bins, empty or non-finite range, bin sum overflow) so
    /// decoders can treat corrupt input as a clean failure.
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>) -> Option<Self> {
        if counts.is_empty() || !(hi > lo) || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        let total = counts.iter().try_fold(0u64, |a, &c| a.checked_add(c))?;
        Some(BinHistogram {
            lo,
            hi,
            counts,
            total,
        })
    }

    /// Serializes the histogram (bounds plus per-bin counts) into `w`.
    pub fn save_state(&self, w: &mut crate::codec::ByteWriter) {
        w.f64(self.lo);
        w.f64(self.hi);
        w.u32(self.counts.len() as u32);
        for &c in &self.counts {
            w.u64(c);
        }
    }

    /// Decodes a histogram serialized by [`BinHistogram::save_state`],
    /// rejecting corrupt geometry via [`BinHistogram::from_parts`].
    pub fn read_state(r: &mut crate::codec::ByteReader) -> Result<Self, crate::codec::CodecError> {
        let lo = r.f64()?;
        let hi = r.f64()?;
        let n = r.seq_len(8)?;
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            counts.push(r.u64()?);
        }
        BinHistogram::from_parts(lo, hi, counts).ok_or(crate::codec::CodecError::Malformed(
            "bad histogram geometry",
        ))
    }

    /// Adds `other`'s bins into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different geometry.
    pub fn merge_from(&mut self, other: &BinHistogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram geometry mismatch: [{}, {})x{} vs [{}, {})x{}",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len()
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// One typed statistic inside a scope.
#[derive(Clone, Debug, PartialEq)]
pub enum Stat {
    /// A monotone event count.
    Counter(u64),
    /// A point-in-time value (last write wins).
    Gauge(f64),
    /// A fixed-bin distribution of observations.
    Histogram(BinHistogram),
    /// A derived rate `num / den` that keeps its components so merged
    /// registries stay exact (`0/0` renders as value `0`).
    Ratio {
        /// Numerator events.
        num: u64,
        /// Denominator events.
        den: u64,
    },
}

impl Stat {
    /// The counter value, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            Stat::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value, if this is a gauge.
    pub fn as_gauge(&self) -> Option<f64> {
        match self {
            Stat::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram, if this is a histogram.
    pub fn as_histogram(&self) -> Option<&BinHistogram> {
        match self {
            Stat::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The ratio value `num/den` (0 when `den == 0`), if this is a ratio.
    pub fn as_ratio(&self) -> Option<f64> {
        match self {
            Stat::Ratio { num, den } => Some(if *den == 0 {
                0.0
            } else {
                *num as f64 / *den as f64
            }),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Stat::Counter(_) => "counter",
            Stat::Gauge(_) => "gauge",
            Stat::Histogram(_) => "histogram",
            Stat::Ratio { .. } => "ratio",
        }
    }

    /// Writes the stat as a single-line JSON object.
    fn write_json(&self, out: &mut String) {
        match self {
            Stat::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            Stat::Gauge(v) => {
                out.push_str("{\"type\":\"gauge\",\"value\":");
                push_json_f64(out, *v);
                out.push('}');
            }
            Stat::Histogram(h) => {
                out.push_str("{\"type\":\"histogram\",\"lo\":");
                push_json_f64(out, h.lo);
                out.push_str(",\"hi\":");
                push_json_f64(out, h.hi);
                let _ = write!(out, ",\"bins\":{},\"counts\":[", h.counts.len());
                for (i, c) in h.counts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{c}");
                }
                let _ = write!(out, "],\"total\":{}}}", h.total);
            }
            Stat::Ratio { num, den } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"ratio\",\"num\":{num},\"den\":{den},\"value\":"
                );
                push_json_f64(
                    out,
                    if *den == 0 {
                        0.0
                    } else {
                        *num as f64 / *den as f64
                    },
                );
                out.push('}');
            }
        }
    }

    /// Renders the stat for the human-readable table output.
    fn render_table(&self) -> String {
        match self {
            Stat::Counter(v) => format!("{v}"),
            Stat::Gauge(v) => format!("{v:.6}"),
            Stat::Histogram(h) => {
                let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
                format!(
                    "hist[{}, {}) total={} counts=[{}]",
                    h.lo,
                    h.hi,
                    h.total,
                    counts.join(",")
                )
            }
            Stat::Ratio { num, den } => {
                let v = if *den == 0 {
                    0.0
                } else {
                    *num as f64 / *den as f64
                };
                format!("{v:.6} ({num}/{den})")
            }
        }
    }
}

/// Escapes and appends `s` as a JSON string literal (with quotes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number.
///
/// Finite values use Rust's shortest round-trip `Display` (so
/// `emitted.parse::<f64>()` returns exactly `v`); non-finite values
/// (which JSON cannot express) are emitted as `null`.
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// An immutable, serializable view of a registry at one point in time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    scopes: BTreeMap<String, BTreeMap<String, Stat>>,
}

impl Snapshot {
    /// The stat `name` inside `scope`, if present.
    pub fn get(&self, scope: &str, name: &str) -> Option<&Stat> {
        self.scopes.get(scope)?.get(name)
    }

    /// Inserts (or replaces) a stat — how the `ramp-serve` store decoder
    /// rebuilds a snapshot from its serialized form.
    pub fn insert(&mut self, scope: impl Into<String>, name: impl Into<String>, stat: Stat) {
        self.scopes
            .entry(scope.into())
            .or_default()
            .insert(name.into(), stat);
    }

    /// Iterates scopes in sorted order.
    pub fn scopes(&self) -> impl Iterator<Item = (&str, &BTreeMap<String, Stat>)> {
        self.scopes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `true` when no scope holds any stat.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Serializes to deterministic JSON: scopes and stats in sorted key
    /// order, one stat per line, no timestamps.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out
    }

    /// Writes the snapshot's JSON object at `indent` levels (2 spaces
    /// each) into `out`.
    pub fn write_json(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        if self.scopes.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        let mut first_scope = true;
        for (scope, stats) in &self.scopes {
            if !first_scope {
                out.push_str(",\n");
            }
            first_scope = false;
            out.push_str(&pad);
            out.push_str("  ");
            push_json_str(out, scope);
            out.push_str(": {\n");
            let mut first_stat = true;
            for (name, stat) in stats {
                if !first_stat {
                    out.push_str(",\n");
                }
                first_stat = false;
                out.push_str(&pad);
                out.push_str("    ");
                push_json_str(out, name);
                out.push_str(": ");
                stat.write_json(out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push_str("  }");
        }
        out.push('\n');
        out.push_str(&pad);
        out.push('}');
    }

    /// Renders a human-readable table: one `[scope]` block per scope,
    /// `name = value` lines inside.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (scope, stats) in &self.scopes {
            let _ = writeln!(out, "[{scope}]");
            for (name, stat) in stats {
                let _ = writeln!(out, "  {name} = {}", stat.render_table());
            }
        }
        out
    }
}

/// The mutable stat registry components export into.
///
/// See the [module docs](self) for the data model and determinism rules.
#[derive(Clone, Debug, Default)]
pub struct StatRegistry {
    scopes: BTreeMap<String, BTreeMap<String, Stat>>,
    volatile: BTreeSet<String>,
    epochs: Vec<(String, Snapshot)>,
}

impl StatRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, scope: &str, name: &str) -> &mut BTreeMap<String, Stat> {
        let _ = name;
        self.scopes.entry(scope.to_string()).or_default()
    }

    /// Adds `delta` to the counter `scope`/`name` (created at 0).
    ///
    /// # Panics
    ///
    /// Panics if the stat exists with a different type.
    pub fn counter_add(&mut self, scope: &str, name: &str, delta: u64) {
        let stat = self
            .slot(scope, name)
            .entry(name.to_string())
            .or_insert(Stat::Counter(0));
        match stat {
            Stat::Counter(v) => *v += delta,
            other => panic!("{scope}/{name} is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the gauge `scope`/`name` to `value` (last write wins).
    ///
    /// # Panics
    ///
    /// Panics if the stat exists with a different type.
    pub fn gauge_set(&mut self, scope: &str, name: &str, value: f64) {
        let stat = self
            .slot(scope, name)
            .entry(name.to_string())
            .or_insert(Stat::Gauge(0.0));
        match stat {
            Stat::Gauge(v) => *v = value,
            other => panic!("{scope}/{name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Adds `num`/`den` events to the ratio `scope`/`name` (created at 0/0).
    ///
    /// # Panics
    ///
    /// Panics if the stat exists with a different type.
    pub fn ratio_add(&mut self, scope: &str, name: &str, num_delta: u64, den_delta: u64) {
        let stat = self
            .slot(scope, name)
            .entry(name.to_string())
            .or_insert(Stat::Ratio { num: 0, den: 0 });
        match stat {
            Stat::Ratio { num, den } => {
                *num += num_delta;
                *den += den_delta;
            }
            other => panic!("{scope}/{name} is a {}, not a ratio", other.kind()),
        }
    }

    /// Records `value` into the histogram `scope`/`name`, creating it
    /// with the given geometry on first use.
    ///
    /// # Panics
    ///
    /// Panics if the stat exists with a different type or geometry.
    pub fn observe(&mut self, scope: &str, name: &str, lo: f64, hi: f64, bins: usize, value: f64) {
        let stat = self
            .slot(scope, name)
            .entry(name.to_string())
            .or_insert_with(|| Stat::Histogram(BinHistogram::new(lo, hi, bins)));
        match stat {
            Stat::Histogram(h) => {
                assert!(
                    h.lo == lo && h.hi == hi && h.counts.len() == bins,
                    "{scope}/{name} histogram geometry mismatch"
                );
                h.observe(value);
            }
            other => panic!("{scope}/{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merges a pre-accumulated histogram into `scope`/`name` (created
    /// empty with `hist`'s geometry on first use).
    ///
    /// # Panics
    ///
    /// Panics if the stat exists with a different type or geometry.
    pub fn observe_hist(&mut self, scope: &str, name: &str, hist: &BinHistogram) {
        let stat = self
            .slot(scope, name)
            .entry(name.to_string())
            .or_insert_with(|| {
                Stat::Histogram(BinHistogram::new(hist.lo, hist.hi, hist.counts.len()))
            });
        match stat {
            Stat::Histogram(h) => h.merge_from(hist),
            other => panic!("{scope}/{name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Marks `scope` (and every sub-scope `scope.*`) as volatile:
    /// excluded from [`Self::snapshot`], included in
    /// [`Self::snapshot_full`]. Use for wall-clock or scheduling-dependent
    /// data that would break cross-thread-count determinism.
    pub fn set_volatile(&mut self, scope: &str) {
        self.volatile.insert(scope.to_string());
    }

    fn is_volatile(&self, scope: &str) -> bool {
        self.volatile.iter().any(|v| {
            scope == v || (scope.starts_with(v.as_str()) && scope.as_bytes()[v.len()] == b'.')
        })
    }

    /// A deterministic snapshot of the current state (volatile scopes
    /// excluded).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            scopes: self
                .scopes
                .iter()
                .filter(|(s, _)| !self.is_volatile(s))
                .map(|(s, m)| (s.clone(), m.clone()))
                .collect(),
        }
    }

    /// A snapshot including volatile scopes (for human-readable output).
    pub fn snapshot_full(&self) -> Snapshot {
        Snapshot {
            scopes: self.scopes.clone(),
        }
    }

    /// Records a labelled epoch snapshot of the current (non-volatile)
    /// state. Counters only ever grow, so successive epochs form a
    /// monotone series per counter.
    pub fn mark_epoch(&mut self, label: impl Into<String>) {
        let snap = self.snapshot();
        self.epochs.push((label.into(), snap));
    }

    /// The recorded epoch snapshots, in recording order.
    pub fn epochs(&self) -> &[(String, Snapshot)] {
        &self.epochs
    }

    /// Merges `other` into `self`: counters and ratios add, histogram
    /// bins add, gauges take `other`'s value; `other`'s volatile marks
    /// and epochs are appended.
    ///
    /// Accumulating registries `A` then `B` into a fresh registry equals
    /// recording all of `A`'s and `B`'s events sequentially (the property
    /// `tests/properties.rs` pins).
    ///
    /// # Panics
    ///
    /// Panics if the same `scope`/`name` holds different stat types or
    /// histogram geometries.
    pub fn merge_from(&mut self, other: &StatRegistry) {
        for (scope, stats) in &other.scopes {
            for (name, stat) in stats {
                match stat {
                    Stat::Counter(v) => self.counter_add(scope, name, *v),
                    Stat::Gauge(v) => self.gauge_set(scope, name, *v),
                    Stat::Histogram(h) => self.observe_hist(scope, name, h),
                    Stat::Ratio { num, den } => self.ratio_add(scope, name, *num, *den),
                }
            }
        }
        for v in &other.volatile {
            self.volatile.insert(v.clone());
        }
        self.epochs.extend(other.epochs.iter().cloned());
    }
}

/// Renders a set of labelled run snapshots as one deterministic JSON
/// document: `{"ramp_telemetry": 1, "runs": {label: snapshot, ...}}`,
/// labels in sorted order.
pub fn render_runs_json(runs: &[(String, Snapshot)]) -> String {
    let sorted: BTreeMap<&str, &Snapshot> = runs.iter().map(|(l, s)| (l.as_str(), s)).collect();
    let mut out = String::new();
    out.push_str("{\n  \"ramp_telemetry\": 1,\n  \"runs\": {");
    let mut first = true;
    for (label, snap) in sorted {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str("    ");
        push_json_str(&mut out, label);
        out.push_str(": ");
        snap.write_json(&mut out, 2);
    }
    if !first {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("}\n}");
    out
}

/// Renders a set of labelled run snapshots as human-readable tables.
pub fn render_runs_table(runs: &[(String, Snapshot)]) -> String {
    let sorted: BTreeMap<&str, &Snapshot> = runs.iter().map(|(l, s)| (l.as_str(), s)).collect();
    let mut out = String::new();
    for (label, snap) in sorted {
        let _ = writeln!(out, "=== {label} ===");
        out.push_str(&snap.to_table());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut reg = StatRegistry::new();
        reg.counter_add("a.b", "x", 3);
        reg.counter_add("a.b", "x", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.get("a.b", "x").unwrap().as_counter(), Some(7));
        assert!(snap.get("a.b", "y").is_none());
    }

    #[test]
    fn gauge_last_write_wins() {
        let mut reg = StatRegistry::new();
        reg.gauge_set("s", "g", 1.5);
        reg.gauge_set("s", "g", 2.5);
        assert_eq!(reg.snapshot().get("s", "g").unwrap().as_gauge(), Some(2.5));
    }

    #[test]
    fn ratio_components_add() {
        let mut reg = StatRegistry::new();
        reg.ratio_add("s", "r", 1, 4);
        reg.ratio_add("s", "r", 1, 4);
        assert_eq!(reg.snapshot().get("s", "r").unwrap().as_ratio(), Some(0.25));
    }

    #[test]
    fn zero_denominator_ratio_is_zero() {
        let mut reg = StatRegistry::new();
        reg.ratio_add("s", "r", 0, 0);
        assert_eq!(reg.snapshot().get("s", "r").unwrap().as_ratio(), Some(0.0));
        assert!(reg.snapshot().to_json().contains("\"value\":0"));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = StatRegistry::new();
        reg.gauge_set("s", "x", 1.0);
        reg.counter_add("s", "x", 1);
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = BinHistogram::new(0.0, 10.0, 5);
        h.observe(-1.0);
        h.observe(0.0);
        h.observe(9.9);
        h.observe(100.0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[4], 2);
    }

    #[test]
    fn histogram_merge_adds_bins() {
        let mut a = BinHistogram::new(0.0, 4.0, 4);
        a.observe(0.5);
        let mut b = BinHistogram::new(0.0, 4.0, 4);
        b.observe(0.5);
        b.observe(3.5);
        a.merge_from(&b);
        assert_eq!(a.counts(), &[2, 0, 0, 1]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn histogram_merge_geometry_checked() {
        let mut a = BinHistogram::new(0.0, 4.0, 4);
        a.merge_from(&BinHistogram::new(0.0, 4.0, 8));
    }

    #[test]
    fn volatile_scopes_excluded_from_default_snapshot() {
        let mut reg = StatRegistry::new();
        reg.counter_add("sim", "ticks", 1);
        reg.counter_add("exec", "steals", 5);
        reg.counter_add("exec.stage0", "steals", 2);
        reg.set_volatile("exec");
        let snap = reg.snapshot();
        assert!(snap.get("exec", "steals").is_none());
        assert!(snap.get("exec.stage0", "steals").is_none());
        assert!(snap.get("sim", "ticks").is_some());
        let full = reg.snapshot_full();
        assert_eq!(full.get("exec", "steals").unwrap().as_counter(), Some(5));
        // Prefix matching is component-wise: "execfoo" is not volatile.
        reg.counter_add("execfoo", "x", 1);
        assert!(reg.snapshot().get("execfoo", "x").is_some());
    }

    #[test]
    fn epochs_record_monotone_counters() {
        let mut reg = StatRegistry::new();
        reg.counter_add("s", "n", 1);
        reg.mark_epoch("e0");
        reg.counter_add("s", "n", 2);
        reg.mark_epoch("e1");
        let epochs = reg.epochs();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].1.get("s", "n").unwrap().as_counter(), Some(1));
        assert_eq!(epochs[1].1.get("s", "n").unwrap().as_counter(), Some(3));
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let mut seq = StatRegistry::new();
        let mut a = StatRegistry::new();
        let mut b = StatRegistry::new();
        for (reg_half, base) in [(&mut a, 0u64), (&mut b, 10u64)] {
            for i in 0..5 {
                reg_half.counter_add("s", "c", base + i);
                seq.counter_add("s", "c", base + i);
                reg_half.observe("s", "h", 0.0, 20.0, 4, (base + i) as f64);
                seq.observe("s", "h", 0.0, 20.0, 4, (base + i) as f64);
            }
        }
        let mut merged = StatRegistry::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.snapshot(), seq.snapshot());
    }

    // ---- JSON writer (satellite: escaping, nesting, empty, f64) ------

    #[test]
    fn json_escapes_special_characters() {
        let mut reg = StatRegistry::new();
        reg.counter_add("quote\"back\\slash", "tab\tnew\nline", 1);
        reg.counter_add("ctrl\u{1}", "x", 2);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"quote\\\"back\\\\slash\""));
        assert!(json.contains("\"tab\\tnew\\nline\""));
        assert!(json.contains("\"ctrl\\u0001\""));
    }

    #[test]
    fn json_nested_scopes_sorted_and_well_formed() {
        let mut reg = StatRegistry::new();
        reg.counter_add("b.inner", "z", 1);
        reg.counter_add("a.inner", "y", 2);
        reg.counter_add("a.inner", "a", 3);
        let json = reg.snapshot().to_json();
        // Scopes and stat names appear in sorted order.
        let pa = json.find("\"a.inner\"").unwrap();
        let pb = json.find("\"b.inner\"").unwrap();
        assert!(pa < pb);
        let py = json.find("\"y\"").unwrap();
        let pz = json.find("\"a\"").unwrap();
        assert!(pz < py);
        // Balanced braces/brackets (a cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_empty_registry_is_empty_object() {
        assert_eq!(StatRegistry::new().snapshot().to_json(), "{}");
        let runs = render_runs_json(&[]);
        assert!(runs.contains("\"runs\": {}"));
    }

    #[test]
    fn json_f64_round_trips() {
        for v in [
            0.0,
            -0.0,
            1.0,
            0.1,
            -3.25,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            6.02214076e23,
            287.13,
        ] {
            let mut out = String::new();
            push_json_f64(&mut out, v);
            let parsed: f64 = out.parse().expect("emitted text parses as f64");
            assert_eq!(parsed.to_bits(), v.to_bits(), "round-trip of {v}");
        }
        // Non-finite values cannot be JSON numbers: emitted as null.
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        push_json_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
    }

    #[test]
    fn json_gauge_value_round_trips_through_text() {
        let mut reg = StatRegistry::new();
        let v = 0.012345678901234567;
        reg.gauge_set("s", "g", v);
        let json = reg.snapshot().to_json();
        let needle = "\"value\":";
        let at = json.rfind(needle).unwrap() + needle.len();
        let rest = &json[at..];
        let end = rest.find('}').unwrap();
        assert_eq!(rest[..end].parse::<f64>().unwrap(), v);
    }

    #[test]
    fn table_rendering_lists_scopes_and_stats() {
        let mut reg = StatRegistry::new();
        reg.counter_add("dram.ch0", "reads", 7);
        reg.ratio_add("dram.ch0", "hit_ratio", 1, 2);
        reg.observe("dram.ch0", "occ", 0.0, 4.0, 2, 1.0);
        let t = reg.snapshot().to_table();
        assert!(t.contains("[dram.ch0]"));
        assert!(t.contains("reads = 7"));
        assert!(t.contains("hit_ratio = 0.500000 (1/2)"));
        assert!(t.contains("total=1"));
    }

    #[test]
    fn run_rendering_sorts_labels() {
        let mut reg = StatRegistry::new();
        reg.counter_add("s", "c", 1);
        let snap = reg.snapshot();
        let runs = vec![
            ("b/run".to_string(), snap.clone()),
            ("a/run".to_string(), snap.clone()),
        ];
        let json = render_runs_json(&runs);
        assert!(json.find("\"a/run\"").unwrap() < json.find("\"b/run\"").unwrap());
        assert!(json.starts_with("{\n  \"ramp_telemetry\": 1"));
        let table = render_runs_table(&runs);
        assert!(table.find("=== a/run ===").unwrap() < table.find("=== b/run ===").unwrap());
    }

    #[test]
    fn snapshot_is_detached_from_registry() {
        let mut reg = StatRegistry::new();
        reg.counter_add("s", "c", 1);
        let snap = reg.snapshot();
        reg.counter_add("s", "c", 100);
        assert_eq!(snap.get("s", "c").unwrap().as_counter(), Some(1));
    }
}
