//! A std-only parallel execution subsystem for sharding independent
//! simulation runs across cores.
//!
//! The experiment matrix (17 benchmarks × policies × configs) is
//! embarrassingly parallel: each `(workload, policy, config)` run is a
//! pure function of its inputs. [`parallel_map`] shards such tasks over a
//! work-stealing pool built on [`std::thread::scope`] — no external
//! crates, no unsafe — and returns results **in input order**, so any
//! consumer that formats results sequentially produces byte-identical
//! output at every thread count.
//!
//! Every task runs inside a `catch_unwind` boundary, so one poisoned
//! simulation cannot take down a whole sweep: [`try_parallel_map`]
//! surfaces each task's outcome as a `Result<R, ExecError>` (with a
//! bounded retry budget via [`TaskOptions`]), while the infallible
//! [`parallel_map`] re-raises the *original* panic payload after the
//! pool joins — callers that can't tolerate failure keep exactly the
//! pre-existing semantics.
//!
//! Determinism rules:
//!
//! * Task closures must not consult global mutable state; every stochastic
//!   decision must flow from an explicit seed. [`task_seed`] derives a
//!   per-task seed from a root seed and the task index with the same
//!   SplitMix64 mixer the [`crate::rng`] child-derivation uses.
//! * Results are collected by task index, never by completion order.
//! * Progress lines go to stderr; stdout is reserved for deterministic
//!   experiment output.
//!
//! ```
//! use ramp_sim::exec::{parallel_map, task_seed};
//! use ramp_sim::SimRng;
//!
//! let inputs: Vec<u64> = (0..32).collect();
//! let one = parallel_map(1, inputs.clone(), |i, &x| {
//!     SimRng::from_seed(task_seed(2018, i as u64)).next_u64() ^ x
//! });
//! let many = parallel_map(4, inputs, |i, &x| {
//!     SimRng::from_seed(task_seed(2018, i as u64)).next_u64() ^ x
//! });
//! assert_eq!(one, many); // bit-identical at any thread count
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::chaos::{self, Chaos};
use crate::rng::mix64;

/// Derives the deterministic seed of task `index` under `root_seed`.
///
/// Every parallel task that needs randomness should seed its own
/// [`crate::SimRng`] from this — never share a generator across tasks —
/// so results are independent of scheduling.
pub fn task_seed(root_seed: u64, index: u64) -> u64 {
    mix64(root_seed ^ mix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// The number of worker threads to use: the `RAMP_THREADS` environment
/// variable if set (minimum 1), else [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAMP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Aggregate counters for one parallel stage, shared across workers.
///
/// All fields are atomics so workers update them lock-free; read them
/// after the stage completes (or concurrently, for progress displays).
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Tasks finished so far (successfully or with a final failure).
    pub completed: AtomicUsize,
    /// Total tasks in the stage.
    pub total: AtomicUsize,
    /// Summed task execution time in nanoseconds (busy time across all
    /// workers; compare against wall time for a parallel-efficiency read).
    pub busy_nanos: AtomicU64,
    /// Number of successful steals (tasks executed by a worker other than
    /// the one they were initially queued on).
    pub steals: AtomicU64,
    /// Panicked task attempts that were retried within the budget.
    pub retried: AtomicU64,
    /// Tasks that exhausted their retry budget and failed.
    pub failed: AtomicU64,
}

impl ExecMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Busy time accumulated by all workers.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    /// Exports the metrics into `scope` of `reg` and marks the scope
    /// volatile: steal counts and wall-clock busy time depend on
    /// scheduling and thread count, so they must never enter the
    /// deterministic snapshot payload.
    pub fn export_telemetry(&self, reg: &mut crate::telemetry::StatRegistry, scope: &str) {
        reg.counter_add(
            scope,
            "tasks_total",
            self.total.load(Ordering::Relaxed) as u64,
        );
        reg.counter_add(
            scope,
            "tasks_completed",
            self.completed.load(Ordering::Relaxed) as u64,
        );
        reg.counter_add(scope, "steals", self.steals.load(Ordering::Relaxed));
        reg.counter_add(scope, "tasks_retried", self.retried.load(Ordering::Relaxed));
        reg.counter_add(scope, "tasks_failed", self.failed.load(Ordering::Relaxed));
        reg.gauge_set(scope, "busy_seconds", self.busy().as_secs_f64());
        reg.set_volatile(scope);
    }
}

/// A labelled wall-clock timer for one pipeline stage; reports to stderr.
///
/// ```no_run
/// let t = ramp_sim::exec::StageTimer::new("profiling");
/// // ... run the stage ...
/// t.finish(); // stderr: "[profiling] 1.23s"
/// ```
#[derive(Debug)]
pub struct StageTimer {
    label: String,
    start: Instant,
}

impl StageTimer {
    /// Starts timing a stage.
    pub fn new(label: impl Into<String>) -> Self {
        StageTimer {
            label: label.into(),
            start: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Prints `[label] <elapsed>` to stderr and returns the elapsed time.
    pub fn finish(self) -> Duration {
        let d = self.start.elapsed();
        eprintln!("[{}] {:.2}s", self.label, d.as_secs_f64());
        d
    }
}

/// Why a task in a [`try_parallel_map`] stage did not produce a result.
#[derive(Debug)]
pub enum ExecError {
    /// The task panicked on every attempt within its retry budget.
    Panicked {
        /// Input-order index of the failed task.
        task: usize,
        /// Total attempts made (1 + retries taken).
        attempts: u32,
        /// Downcast panic message of the final attempt.
        message: String,
    },
    /// The task vanished without reporting a result (its worker died
    /// outside the catch_unwind boundary — should be unreachable, but a
    /// lost slot must classify, not panic, during join).
    Lost {
        /// Input-order index of the lost task.
        task: usize,
    },
}

impl ExecError {
    /// Input-order index of the task this error belongs to.
    pub fn task(&self) -> usize {
        match self {
            ExecError::Panicked { task, .. } | ExecError::Lost { task } => *task,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Panicked {
                task,
                attempts,
                message,
            } => {
                write!(
                    f,
                    "task {task} panicked after {attempts} attempt(s): {message}"
                )
            }
            ExecError::Lost { task } => write!(f, "task {task} produced no result"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Per-stage execution knobs for the fallible [`try_parallel_map`] APIs.
#[derive(Clone, Debug, Default)]
pub struct TaskOptions {
    /// How many times a panicked task is re-run before it fails.
    pub retries: u32,
    /// Optional fault-injection registry; when set, each task attempt
    /// rolls the `exec.task` site for injected delays and panics.
    pub chaos: Option<Arc<Chaos>>,
}

impl TaskOptions {
    /// No retries, no fault injection — `catch_unwind` is the only
    /// difference from the infallible path.
    pub fn none() -> Self {
        TaskOptions::default()
    }

    /// Options driven by the process-wide [`chaos::global`] registry:
    /// its retry budget and injection sites when `RAMP_CHAOS` is set,
    /// [`TaskOptions::none`] otherwise.
    pub fn from_env() -> Self {
        match chaos::global() {
            Some(c) => TaskOptions {
                retries: c.retries(),
                chaos: Some(c),
            },
            None => TaskOptions::none(),
        }
    }
}

/// Internal failure record carrying the *original* panic payload so the
/// infallible wrapper can `resume_unwind` it unchanged.
struct TaskFailure {
    attempts: u32,
    payload: Box<dyn Any + Send>,
}

/// Work-stealing deques: one per worker, round-robin seeded.
struct Queues<T> {
    queues: Vec<Mutex<VecDeque<(usize, T)>>>,
}

impl<T> Queues<T> {
    fn new(workers: usize, items: Vec<T>) -> Self {
        let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back((i, item));
        }
        Queues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Pops the next task for worker `w`: front of its own deque, else
    /// steals from the back of the first non-empty sibling. Returns the
    /// task and whether it was stolen.
    fn pop(&self, w: usize) -> Option<(usize, T, bool)> {
        if let Some((i, t)) = self.queues[w].lock().expect("queue poisoned").pop_front() {
            return Some((i, t, false));
        }
        let n = self.queues.len();
        for k in 1..n {
            let v = (w + k) % n;
            if let Some((i, t)) = self.queues[v].lock().expect("queue poisoned").pop_back() {
                return Some((i, t, true));
            }
        }
        None
    }
}

/// Runs `f` over `items` on `threads` workers with work stealing,
/// returning results in input order.
///
/// `f` receives `(task_index, &item)`. With `threads <= 1` the items are
/// processed inline on the caller's thread (identical results, no pool).
/// A worker panic propagates to the caller after the scope joins, with
/// the original payload; sibling tasks still complete first.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_metrics(threads, items, &ExecMetrics::new(), None, f)
}

/// [`parallel_map`] with shared [`ExecMetrics`] and optional stderr
/// progress reporting (`progress = Some(label)` prints `label k/n` as
/// tasks complete).
pub fn parallel_map_metrics<T, R, F>(
    threads: usize,
    items: Vec<T>,
    metrics: &ExecMetrics,
    progress: Option<&str>,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut failure: Option<Box<dyn Any + Send>> = None;
    let out: Vec<R> = run_tasks(threads, items, metrics, progress, &TaskOptions::none(), f)
        .into_iter()
        .enumerate()
        .filter_map(|(i, slot)| match slot {
            Some(Ok(r)) => Some(r),
            Some(Err(fail)) => {
                failure.get_or_insert(fail.payload);
                None
            }
            None => {
                if failure.is_none() {
                    panic!("task {i} produced no result");
                }
                None
            }
        })
        .collect();
    if let Some(payload) = failure {
        resume_unwind(payload);
    }
    out
}

/// Fallible [`parallel_map`]: every task outcome is returned in input
/// order as a `Result`, so one poisoned task no longer aborts the stage.
///
/// Panicked tasks are re-run up to `opts.retries` times; when `opts.chaos`
/// is set, each attempt also rolls the `exec.task` injection site for
/// delays and injected panics. Nothing here panics during join: a task
/// that cannot produce a result classifies as [`ExecError`].
///
/// ```
/// use ramp_sim::exec::{try_parallel_map, ExecError, TaskOptions};
///
/// let out = try_parallel_map(2, vec![1u64, 2, 3], &TaskOptions::none(), |_, &x| {
///     if x == 2 {
///         panic!("bad input {x}");
///     }
///     x * 10
/// });
/// assert_eq!(out[0].as_ref().ok(), Some(&10));
/// assert!(matches!(out[1], Err(ExecError::Panicked { task: 1, .. })));
/// assert_eq!(out[2].as_ref().ok(), Some(&30));
/// ```
pub fn try_parallel_map<T, R, F>(
    threads: usize,
    items: Vec<T>,
    opts: &TaskOptions,
    f: F,
) -> Vec<Result<R, ExecError>>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_parallel_map_metrics(threads, items, &ExecMetrics::new(), None, opts, f)
}

/// [`try_parallel_map`] with shared [`ExecMetrics`] and optional stderr
/// progress reporting.
pub fn try_parallel_map_metrics<T, R, F>(
    threads: usize,
    items: Vec<T>,
    metrics: &ExecMetrics,
    progress: Option<&str>,
    opts: &TaskOptions,
    f: F,
) -> Vec<Result<R, ExecError>>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_tasks(threads, items, metrics, progress, opts, f)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| match slot {
            Some(Ok(r)) => Ok(r),
            Some(Err(fail)) => Err(ExecError::Panicked {
                task: i,
                attempts: fail.attempts,
                message: chaos::panic_message(fail.payload.as_ref()),
            }),
            None => Err(ExecError::Lost { task: i }),
        })
        .collect()
}

/// The shared work-stealing core. Every task attempt runs inside
/// `catch_unwind`; panicked attempts are retried within `opts.retries`.
/// Slots stay `None` only if a worker died outside the unwind boundary.
fn run_tasks<T, R, F>(
    threads: usize,
    items: Vec<T>,
    metrics: &ExecMetrics,
    progress: Option<&str>,
    opts: &TaskOptions,
    f: F,
) -> Vec<Option<Result<R, TaskFailure>>>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    metrics.total.fetch_add(n, Ordering::Relaxed);
    let run_one = |i: usize, item: &T| -> Result<R, TaskFailure> {
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let outcome = loop {
            let attempt_result = catch_unwind(AssertUnwindSafe(|| {
                if let Some(chaos) = &opts.chaos {
                    chaos.maybe_slow("exec.task");
                    chaos.maybe_panic("exec.task");
                }
                f(i, item)
            }));
            match attempt_result {
                Ok(r) => break Ok(r),
                Err(payload) => {
                    if attempt < opts.retries {
                        attempt += 1;
                        metrics.retried.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "  [exec] task {i} panicked ({}); retry {attempt}/{}",
                            chaos::panic_message(payload.as_ref()),
                            opts.retries
                        );
                        continue;
                    }
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    break Err(TaskFailure {
                        attempts: attempt + 1,
                        payload,
                    });
                }
            }
        };
        metrics
            .busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let done = metrics.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(label) = progress {
            eprintln!(
                "  [{label}] {done}/{}",
                metrics.total.load(Ordering::Relaxed)
            );
        }
        outcome
    };

    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| Some(run_one(i, t)))
            .collect();
    }

    let workers = threads.min(n);
    let queues = Queues::new(workers, items);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, TaskFailure>)>();
    std::thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let run_one = &run_one;
            s.spawn(move || {
                while let Some((i, item, stolen)) = queues.pop(w) {
                    if stolen {
                        metrics.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let r = run_one(i, &item);
                    if tx.send((i, r)).is_err() {
                        return; // receiver gone: caller is unwinding
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<R, TaskFailure>>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn results_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(threads, items.clone(), |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rng_tasks_are_bit_identical_across_thread_counts() {
        let work = |i: usize, _: &()| {
            let mut rng = SimRng::from_seed(task_seed(7, i as u64));
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let one = parallel_map(1, vec![(); 64], work);
        let eight = parallel_map(8, vec![(); 64], work);
        assert_eq!(one, eight);
    }

    #[test]
    fn task_seeds_are_decorrelated() {
        let a = task_seed(1, 0);
        let b = task_seed(1, 1);
        let c = task_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Consecutive indices share no obvious structure.
        assert_ne!(a ^ b, task_seed(1, 1) ^ task_seed(1, 2));
    }

    #[test]
    fn metrics_account_every_task() {
        let m = ExecMetrics::new();
        let out = parallel_map_metrics(4, (0..37).collect::<Vec<u64>>(), &m, None, |_, &x| x);
        assert_eq!(out.len(), 37);
        assert_eq!(m.completed.load(Ordering::Relaxed), 37);
        assert_eq!(m.total.load(Ordering::Relaxed), 37);
        assert_eq!(m.retried.load(Ordering::Relaxed), 0);
        assert_eq!(m.failed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(16, vec![1u64, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn stage_timer_reports_elapsed() {
        let t = StageTimer::new("test-stage");
        assert!(t.elapsed() < Duration::from_secs(5));
        let d = t.finish();
        assert!(d < Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        parallel_map(2, vec![0u64, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn try_map_isolates_panics_per_task() {
        for threads in [1, 4] {
            let m = ExecMetrics::new();
            let out = try_parallel_map_metrics(
                threads,
                (0..16u64).collect::<Vec<_>>(),
                &m,
                None,
                &TaskOptions::none(),
                |_, &x| {
                    if x % 5 == 0 {
                        panic!("divisible by five: {x}");
                    }
                    x * 2
                },
            );
            assert_eq!(out.len(), 16);
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 0 {
                    match r {
                        Err(ExecError::Panicked {
                            task,
                            attempts,
                            message,
                        }) => {
                            assert_eq!(*task, i);
                            assert_eq!(*attempts, 1);
                            assert_eq!(message, &format!("divisible by five: {i}"));
                        }
                        other => panic!("expected classified panic, got {other:?}"),
                    }
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i as u64 * 2)));
                }
            }
            assert_eq!(m.completed.load(Ordering::Relaxed), 16);
            assert_eq!(m.failed.load(Ordering::Relaxed), 4); // 0, 5, 10, 15
        }
    }

    #[test]
    fn retry_budget_recovers_flaky_tasks() {
        use std::sync::atomic::AtomicU32;
        let tries = AtomicU32::new(0);
        let opts = TaskOptions {
            retries: 2,
            chaos: None,
        };
        let m = ExecMetrics::new();
        let out = try_parallel_map_metrics(1, vec![7u64], &m, None, &opts, |_, &x| {
            if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                panic!("flaky");
            }
            x
        });
        assert_eq!(out[0].as_ref().ok(), Some(&7));
        assert_eq!(m.retried.load(Ordering::Relaxed), 2);
        assert_eq!(m.failed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn exhausted_retries_classify_with_attempt_count() {
        let opts = TaskOptions {
            retries: 3,
            chaos: None,
        };
        let out = try_parallel_map(1, vec![0u64], &opts, |_, _| -> u64 { panic!("always") });
        match &out[0] {
            Err(ExecError::Panicked {
                attempts, message, ..
            }) => {
                assert_eq!(*attempts, 4);
                assert_eq!(message, "always");
            }
            other => panic!("expected exhausted retries, got {other:?}"),
        }
    }

    #[test]
    fn chaos_injected_panics_are_retried_and_classified() {
        // p = 1 panics on every attempt: the task must fail classified,
        // never unwind out of the stage.
        let chaos = Arc::new(Chaos::from_spec(11, "panic=1.0").unwrap());
        let opts = TaskOptions {
            retries: 1,
            chaos: Some(Arc::clone(&chaos)),
        };
        let m = ExecMetrics::new();
        let out = try_parallel_map_metrics(2, vec![1u64, 2], &m, None, &opts, |_, &x| x);
        for r in &out {
            match r {
                Err(ExecError::Panicked {
                    attempts, message, ..
                }) => {
                    assert_eq!(*attempts, 2);
                    assert!(message.contains("chaos: injected panic"), "{message}");
                }
                other => panic!("expected injected panic, got {other:?}"),
            }
        }
        assert_eq!(m.retried.load(Ordering::Relaxed), 2);
        assert_eq!(m.failed.load(Ordering::Relaxed), 2);
        assert_eq!(chaos.injected(crate::chaos::FaultKind::Panic), 4);
    }

    #[test]
    fn exec_error_display_is_stable() {
        let e = ExecError::Panicked {
            task: 3,
            attempts: 2,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task 3 panicked after 2 attempt(s): boom");
        assert_eq!(e.task(), 3);
        let l = ExecError::Lost { task: 9 };
        assert_eq!(l.to_string(), "task 9 produced no result");
        assert_eq!(l.task(), 9);
    }
}
