//! A std-only parallel execution subsystem for sharding independent
//! simulation runs across cores.
//!
//! The experiment matrix (17 benchmarks × policies × configs) is
//! embarrassingly parallel: each `(workload, policy, config)` run is a
//! pure function of its inputs. [`parallel_map`] shards such tasks over a
//! work-stealing pool built on [`std::thread::scope`] — no external
//! crates, no unsafe — and returns results **in input order**, so any
//! consumer that formats results sequentially produces byte-identical
//! output at every thread count.
//!
//! Determinism rules:
//!
//! * Task closures must not consult global mutable state; every stochastic
//!   decision must flow from an explicit seed. [`task_seed`] derives a
//!   per-task seed from a root seed and the task index with the same
//!   SplitMix64 mixer the [`crate::rng`] child-derivation uses.
//! * Results are collected by task index, never by completion order.
//! * Progress lines go to stderr; stdout is reserved for deterministic
//!   experiment output.
//!
//! ```
//! use ramp_sim::exec::{parallel_map, task_seed};
//! use ramp_sim::SimRng;
//!
//! let inputs: Vec<u64> = (0..32).collect();
//! let one = parallel_map(1, inputs.clone(), |i, &x| {
//!     SimRng::from_seed(task_seed(2018, i as u64)).next_u64() ^ x
//! });
//! let many = parallel_map(4, inputs, |i, &x| {
//!     SimRng::from_seed(task_seed(2018, i as u64)).next_u64() ^ x
//! });
//! assert_eq!(one, many); // bit-identical at any thread count
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::rng::mix64;

/// Derives the deterministic seed of task `index` under `root_seed`.
///
/// Every parallel task that needs randomness should seed its own
/// [`crate::SimRng`] from this — never share a generator across tasks —
/// so results are independent of scheduling.
pub fn task_seed(root_seed: u64, index: u64) -> u64 {
    mix64(root_seed ^ mix64(index.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// The number of worker threads to use: the `RAMP_THREADS` environment
/// variable if set (minimum 1), else [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RAMP_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Aggregate counters for one parallel stage, shared across workers.
///
/// All fields are atomics so workers update them lock-free; read them
/// after the stage completes (or concurrently, for progress displays).
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Tasks completed so far.
    pub completed: AtomicUsize,
    /// Total tasks in the stage.
    pub total: AtomicUsize,
    /// Summed task execution time in nanoseconds (busy time across all
    /// workers; compare against wall time for a parallel-efficiency read).
    pub busy_nanos: AtomicU64,
    /// Number of successful steals (tasks executed by a worker other than
    /// the one they were initially queued on).
    pub steals: AtomicU64,
}

impl ExecMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Busy time accumulated by all workers.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    /// Exports the metrics into `scope` of `reg` and marks the scope
    /// volatile: steal counts and wall-clock busy time depend on
    /// scheduling and thread count, so they must never enter the
    /// deterministic snapshot payload.
    pub fn export_telemetry(&self, reg: &mut crate::telemetry::StatRegistry, scope: &str) {
        reg.counter_add(
            scope,
            "tasks_total",
            self.total.load(Ordering::Relaxed) as u64,
        );
        reg.counter_add(
            scope,
            "tasks_completed",
            self.completed.load(Ordering::Relaxed) as u64,
        );
        reg.counter_add(scope, "steals", self.steals.load(Ordering::Relaxed));
        reg.gauge_set(scope, "busy_seconds", self.busy().as_secs_f64());
        reg.set_volatile(scope);
    }
}

/// A labelled wall-clock timer for one pipeline stage; reports to stderr.
///
/// ```no_run
/// let t = ramp_sim::exec::StageTimer::new("profiling");
/// // ... run the stage ...
/// t.finish(); // stderr: "[profiling] 1.23s"
/// ```
#[derive(Debug)]
pub struct StageTimer {
    label: String,
    start: Instant,
}

impl StageTimer {
    /// Starts timing a stage.
    pub fn new(label: impl Into<String>) -> Self {
        StageTimer {
            label: label.into(),
            start: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Prints `[label] <elapsed>` to stderr and returns the elapsed time.
    pub fn finish(self) -> Duration {
        let d = self.start.elapsed();
        eprintln!("[{}] {:.2}s", self.label, d.as_secs_f64());
        d
    }
}

/// Work-stealing deques: one per worker, round-robin seeded.
struct Queues<T> {
    queues: Vec<Mutex<VecDeque<(usize, T)>>>,
}

impl<T> Queues<T> {
    fn new(workers: usize, items: Vec<T>) -> Self {
        let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back((i, item));
        }
        Queues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Pops the next task for worker `w`: front of its own deque, else
    /// steals from the back of the first non-empty sibling. Returns the
    /// task and whether it was stolen.
    fn pop(&self, w: usize) -> Option<(usize, T, bool)> {
        if let Some((i, t)) = self.queues[w].lock().expect("queue poisoned").pop_front() {
            return Some((i, t, false));
        }
        let n = self.queues.len();
        for k in 1..n {
            let v = (w + k) % n;
            if let Some((i, t)) = self.queues[v].lock().expect("queue poisoned").pop_back() {
                return Some((i, t, true));
            }
        }
        None
    }
}

/// Runs `f` over `items` on `threads` workers with work stealing,
/// returning results in input order.
///
/// `f` receives `(task_index, &item)`. With `threads <= 1` the items are
/// processed inline on the caller's thread (identical results, no pool).
/// A worker panic propagates to the caller after the scope joins.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_metrics(threads, items, &ExecMetrics::new(), None, f)
}

/// [`parallel_map`] with shared [`ExecMetrics`] and optional stderr
/// progress reporting (`progress = Some(label)` prints `label k/n` as
/// tasks complete).
pub fn parallel_map_metrics<T, R, F>(
    threads: usize,
    items: Vec<T>,
    metrics: &ExecMetrics,
    progress: Option<&str>,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    metrics.total.fetch_add(n, Ordering::Relaxed);
    let run_one = |i: usize, item: &T| -> R {
        let start = Instant::now();
        let r = f(i, item);
        metrics
            .busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let done = metrics.completed.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(label) = progress {
            eprintln!(
                "  [{label}] {done}/{}",
                metrics.total.load(Ordering::Relaxed)
            );
        }
        r
    };

    if threads <= 1 || n <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }

    let workers = threads.min(n);
    let queues = Queues::new(workers, items);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let run_one = &run_one;
            s.spawn(move || {
                while let Some((i, item, stolen)) = queues.pop(w) {
                    if stolen {
                        metrics.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let r = run_one(i, &item);
                    if tx.send((i, r)).is_err() {
                        return; // receiver gone: caller is unwinding
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("task {i} produced no result")))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn results_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(threads, items.clone(), |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rng_tasks_are_bit_identical_across_thread_counts() {
        let work = |i: usize, _: &()| {
            let mut rng = SimRng::from_seed(task_seed(7, i as u64));
            (0..100)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let one = parallel_map(1, vec![(); 64], work);
        let eight = parallel_map(8, vec![(); 64], work);
        assert_eq!(one, eight);
    }

    #[test]
    fn task_seeds_are_decorrelated() {
        let a = task_seed(1, 0);
        let b = task_seed(1, 1);
        let c = task_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Consecutive indices share no obvious structure.
        assert_ne!(a ^ b, task_seed(1, 1) ^ task_seed(1, 2));
    }

    #[test]
    fn metrics_account_every_task() {
        let m = ExecMetrics::new();
        let out = parallel_map_metrics(4, (0..37).collect::<Vec<u64>>(), &m, None, |_, &x| x);
        assert_eq!(out.len(), 37);
        assert_eq!(m.completed.load(Ordering::Relaxed), 37);
        assert_eq!(m.total.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(16, vec![1u64, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn stage_timer_reports_elapsed() {
        let t = StageTimer::new("test-stage");
        assert!(t.elapsed() < Duration::from_secs(5));
        let d = t.finish();
        assert!(d < Duration::from_secs(5));
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        parallel_map(2, vec![0u64, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
