//! A hand-rolled binary codec for the persistent run store.
//!
//! `ramp-serve` persists simulation results on disk; this module provides
//! the dependency-free byte-level plumbing it builds on:
//!
//! * [`ByteWriter`] / [`ByteReader`] — little-endian primitive
//!   serialization with length-prefixed strings and explicit error
//!   handling (a corrupt or truncated buffer yields a [`CodecError`],
//!   never a panic).
//! * [`fnv1a64`] — the FNV-1a content hash used both for payload
//!   checksums and for deriving content-addressed store keys.
//! * [`encode_framed`] / [`decode_framed`] — a versioned container
//!   format: magic, format version, payload kind, length-prefixed
//!   payload, and a trailing checksum. Any mismatch (wrong magic, wrong
//!   version, wrong kind, bad checksum, truncation) decodes to a clean
//!   error so callers can treat damaged cache entries as misses.
//!
//! ```
//! use ramp_sim::codec::{decode_framed, encode_framed, ByteReader, ByteWriter};
//!
//! let mut w = ByteWriter::new();
//! w.str("lbm");
//! w.f64(1.75);
//! let framed = encode_framed(1, 1, w.bytes());
//!
//! let payload = decode_framed(&framed, 1, 1).unwrap();
//! let mut r = ByteReader::new(payload);
//! assert_eq!(r.str().unwrap(), "lbm");
//! assert_eq!(r.f64().unwrap(), 1.75);
//! assert!(r.is_empty());
//! ```

use std::fmt;

/// Magic bytes opening every framed store entry.
pub const MAGIC: [u8; 8] = *b"RAMPSTOR";

/// Why a buffer failed to decode. Every variant is a *clean* failure: the
/// store maps all of them to a cache miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced data did.
    Truncated,
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// The container was written by a different format version.
    WrongVersion {
        /// Version found in the header.
        found: u32,
        /// Version the reader expected.
        expected: u32,
    },
    /// The container holds a different payload kind.
    WrongKind {
        /// Kind tag found in the header.
        found: u8,
        /// Kind tag the reader expected.
        expected: u8,
    },
    /// The payload checksum does not match its contents.
    BadChecksum,
    /// The payload structure is inconsistent (bad tag, bad UTF-8,
    /// implausible length, trailing bytes...).
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer truncated"),
            CodecError::BadMagic => write!(f, "bad magic"),
            CodecError::WrongVersion { found, expected } => {
                write!(f, "format version {found}, expected {expected}")
            }
            CodecError::WrongKind { found, expected } => {
                write!(f, "payload kind {found}, expected {expected}")
            }
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over `bytes` with the standard 64-bit offset basis.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a over `bytes` from an explicit starting state, so independent
/// hash streams (e.g. the two halves of a 128-bit store key) can be
/// derived from the same input.
pub fn fnv1a64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An append-only little-endian byte buffer.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer and returns its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip,
    /// including NaN payloads and signed zeros).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Malformed("non-UTF-8 string"))
    }

    /// Reads a `u32` element count for a sequence whose elements occupy at
    /// least `min_elem_bytes` each, rejecting counts the remaining buffer
    /// cannot possibly hold — so a corrupt length can never trigger a
    /// huge allocation.
    pub fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        let need = n
            .checked_mul(min_elem_bytes)
            .ok_or(CodecError::Malformed("sequence length overflow"))?;
        if need > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }
}

/// Wraps `payload` in the framed container: magic, `version`, `kind`,
/// length-prefixed payload, trailing FNV-1a checksum.
pub fn encode_framed(kind: u8, version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAGIC.len() + 21 + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out
}

/// Validates a framed container and returns its payload slice.
///
/// Checks, in order: magic, format version, payload kind, payload length
/// (with no trailing bytes allowed), and checksum. Each failure maps to
/// the corresponding [`CodecError`] — never a panic — so damaged or
/// stale store entries degrade to cache misses.
pub fn decode_framed(bytes: &[u8], kind: u8, version: u32) -> Result<&[u8], CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let found_version = r.u32()?;
    if found_version != version {
        return Err(CodecError::WrongVersion {
            found: found_version,
            expected: version,
        });
    }
    let found_kind = r.u8()?;
    if found_kind != kind {
        return Err(CodecError::WrongKind {
            found: found_kind,
            expected: kind,
        });
    }
    let len = r.u64()?;
    if len > r.remaining() as u64 {
        return Err(CodecError::Truncated);
    }
    let payload = r.take(len as usize).expect("length checked");
    let checksum = r.u64()?;
    if !r.is_empty() {
        return Err(CodecError::Malformed("trailing bytes after checksum"));
    }
    if checksum != fnv1a64(payload) {
        return Err(CodecError::BadChecksum);
    }
    Ok(payload)
}

/// Like [`decode_framed`], but for a frame at the *head* of a longer
/// buffer: returns the payload slice and the total number of bytes the
/// frame occupied, without rejecting trailing bytes. This is what an
/// append-only log needs to scan records back-to-back.
///
/// A [`CodecError::Truncated`] here means the buffer ended mid-frame —
/// for a log scan that is the torn-tail signal; any other error means
/// the frame itself is damaged.
pub fn decode_framed_prefix(
    bytes: &[u8],
    kind: u8,
    version: u32,
) -> Result<(&[u8], usize), CodecError> {
    let mut r = ByteReader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let found_version = r.u32()?;
    if found_version != version {
        return Err(CodecError::WrongVersion {
            found: found_version,
            expected: version,
        });
    }
    let found_kind = r.u8()?;
    if found_kind != kind {
        return Err(CodecError::WrongKind {
            found: found_kind,
            expected: kind,
        });
    }
    let len = r.u64()?;
    if len > r.remaining() as u64 {
        return Err(CodecError::Truncated);
    }
    let payload = r.take(len as usize).expect("length checked");
    let checksum = r.u64()?;
    if checksum != fnv1a64(payload) {
        return Err(CodecError::BadChecksum);
    }
    let consumed = bytes.len() - r.remaining();
    Ok((payload, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo\n");
        w.str("");
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo\n");
        assert_eq!(r.str().unwrap(), "");
        assert!(r.is_empty());
    }

    #[test]
    fn reads_past_end_are_truncated_errors() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u32(), Err(CodecError::Truncated));
        // The failed read consumed nothing usable; smaller reads still work.
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
    }

    #[test]
    fn string_with_bad_utf8_is_malformed() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.u8(0xff);
        w.u8(0xfe);
        let buf = w.into_bytes();
        assert_eq!(
            ByteReader::new(&buf).str(),
            Err(CodecError::Malformed("non-UTF-8 string"))
        );
    }

    #[test]
    fn seq_len_rejects_implausible_counts() {
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let buf = w.into_bytes();
        let err = ByteReader::new(&buf).seq_len(8).unwrap_err();
        assert!(matches!(
            err,
            CodecError::Truncated | CodecError::Malformed(_)
        ));
    }

    #[test]
    fn framed_round_trip() {
        let framed = encode_framed(3, 9, b"payload");
        assert_eq!(decode_framed(&framed, 3, 9).unwrap(), b"payload");
    }

    #[test]
    fn framed_rejects_every_corruption_cleanly() {
        let framed = encode_framed(1, 2, b"some payload bytes");
        // Truncation at every possible length decodes to an error.
        for cut in 0..framed.len() {
            assert!(decode_framed(&framed[..cut], 1, 2).is_err(), "cut {cut}");
        }
        // Wrong magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_framed(&bad, 1, 2), Err(CodecError::BadMagic));
        // Wrong version / kind.
        assert!(matches!(
            decode_framed(&framed, 1, 3),
            Err(CodecError::WrongVersion {
                found: 2,
                expected: 3
            })
        ));
        assert!(matches!(
            decode_framed(&framed, 4, 2),
            Err(CodecError::WrongKind {
                found: 1,
                expected: 4
            })
        ));
        // Payload bit flip -> checksum mismatch.
        let mut bad = framed.clone();
        bad[MAGIC.len() + 13] ^= 1;
        assert_eq!(decode_framed(&bad, 1, 2), Err(CodecError::BadChecksum));
        // Trailing garbage.
        let mut bad = framed.clone();
        bad.push(0);
        assert_eq!(
            decode_framed(&bad, 1, 2),
            Err(CodecError::Malformed("trailing bytes after checksum"))
        );
    }

    #[test]
    fn framed_prefix_scans_concatenated_records() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_framed(4, 1, b"first"));
        log.extend_from_slice(&encode_framed(4, 1, b"second record"));
        let (p1, n1) = decode_framed_prefix(&log, 4, 1).unwrap();
        assert_eq!(p1, b"first");
        let (p2, n2) = decode_framed_prefix(&log[n1..], 4, 1).unwrap();
        assert_eq!(p2, b"second record");
        assert_eq!(n1 + n2, log.len());
        // A torn tail (truncated second record) reads as Truncated.
        for cut in n1 + 1..log.len() {
            assert_eq!(
                decode_framed_prefix(&log[n1..cut], 4, 1).unwrap_err(),
                CodecError::Truncated,
                "cut {cut}"
            );
        }
        // A corrupted payload byte reads as a checksum failure, not a
        // truncation, so replay can tell damage from a torn tail.
        let mut bad = log.clone();
        bad[n1 + MAGIC.len() + 14] ^= 1;
        assert_eq!(
            decode_framed_prefix(&bad[n1..], 4, 1),
            Err(CodecError::BadChecksum)
        );
    }

    #[test]
    fn fnv_is_stable_and_seedable() {
        // Pinned value so the on-disk format cannot silently drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64_seeded(1, b"x"), fnv1a64_seeded(2, b"x"));
    }
}
