//! A deterministic discrete-event queue.
//!
//! The DRAM controllers and migration engines schedule future work on an
//! [`EventQueue`]. Events firing at the same cycle are delivered in
//! insertion order (a monotonically increasing sequence number breaks ties),
//! which keeps whole-system simulation runs bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::units::Cycle;

/// A time-ordered queue of events of type `T`.
///
/// ```
/// use ramp_sim::event::EventQueue;
/// use ramp_sim::units::Cycle;
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(10), "b");
/// q.schedule(Cycle(5), "a");
/// q.schedule(Cycle(10), "c");
/// assert_eq!(q.pop(), Some((Cycle(5), "a")));
/// assert_eq!(q.pop(), Some((Cycle(10), "b"))); // FIFO among same-cycle events
/// assert_eq!(q.pop(), Some((Cycle(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    at: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to fire at cycle `at`.
    pub fn schedule(&mut self, at: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Cycle of the earliest pending event, if any.
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`.
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        if self.next_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Rebuilds a queue from a [`EventQueue::snapshot`]. Sequence numbers
    /// restart from zero but the snapshot's time-then-FIFO order is
    /// preserved, so pop order is identical to the captured queue's.
    pub fn rebuild(events: Vec<(Cycle, T)>) -> Self {
        let mut q = EventQueue::new();
        for (at, payload) in events {
            q.schedule(at, payload);
        }
        q
    }
}

impl<T: Clone> EventQueue<T> {
    /// Time-ordered copies of every pending event, for checkpointing.
    pub fn snapshot(&self) -> Vec<(Cycle, T)> {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort();
        entries
            .into_iter()
            .map(|e| (e.at, e.payload.clone()))
            .collect()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(3), 30);
        q.schedule(Cycle(1), 10);
        q.schedule(Cycle(3), 31);
        q.schedule(Cycle(2), 20);
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            drained,
            vec![
                (Cycle(1), 10),
                (Cycle(2), 20),
                (Cycle(3), 30),
                (Cycle(3), 31)
            ]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), 'a');
        q.schedule(Cycle(8), 'b');
        assert_eq!(q.pop_due(Cycle(4)), None);
        assert_eq!(q.pop_due(Cycle(5)), Some((Cycle(5), 'a')));
        assert_eq!(q.pop_due(Cycle(100)), Some((Cycle(8), 'b')));
        assert_eq!(q.pop_due(Cycle(100)), None);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.is_empty());
        q.schedule(Cycle(0), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
    }
}
