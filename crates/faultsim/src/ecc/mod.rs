//! Error-correcting codes: Hsiao SEC-DED and symbol-based ChipKill.

pub mod chipkill;
pub mod gf256;
pub mod hsiao;

pub use chipkill::ChipKill;
pub use gf256::Gf256;
pub use hsiao::{DecodeOutcome, ErrorClass, Hsiao7264};
