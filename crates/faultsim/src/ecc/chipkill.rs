//! ChipKill: single-symbol-correct / double-symbol-detect Reed-Solomon
//! code over GF(256).
//!
//! The paper's DDRx memory uses "single-ChipKill \[10\]" (Dell 1997): the
//! rank is built from x4 devices and the ECC can correct the failure of an
//! entire DRAM chip. We model the standard symbol-based construction: each
//! chip contributes one 8-bit symbol per codeword (4 bits per beat over two
//! beats), a rank of 36 chips gives an RS(36, 32) code with 4 check
//! symbols (minimum distance 5). The decoder performs bounded-distance
//! decoding at t = 1: it corrects any single-symbol error and flags
//! everything else it can see as uncorrectable, which is the
//! SSC-DSD operating point.

use crate::ecc::gf256::Gf256;
use crate::ecc::hsiao::ErrorClass;

/// Total symbols per codeword (36 x4 chips).
pub const TOTAL_SYMBOLS: usize = 36;
/// Check symbols (chips dedicated to ECC).
pub const CHECK_SYMBOLS: usize = 4;
/// Data symbols.
pub const DATA_SYMBOLS: usize = TOTAL_SYMBOLS - CHECK_SYMBOLS;

/// The ChipKill code.
#[derive(Clone, Debug)]
pub struct ChipKill {
    gf: Gf256,
}

impl Default for ChipKill {
    fn default() -> Self {
        Self::new()
    }
}

impl ChipKill {
    /// Builds the code.
    pub fn new() -> Self {
        ChipKill { gf: Gf256::new() }
    }

    /// Computes the four syndromes of an error pattern.
    ///
    /// `error[i]` is the error value added to symbol `i` (0 = no error).
    /// Syndrome j = Σ_i e_i · α^(i·(j+1)). For the all-zero codeword this
    /// is also the received word's syndrome (the code is linear).
    fn syndromes(&self, error: &[u8; TOTAL_SYMBOLS]) -> [u8; CHECK_SYMBOLS] {
        let mut s = [0u8; CHECK_SYMBOLS];
        for (i, &e) in error.iter().enumerate() {
            if e == 0 {
                continue;
            }
            for (j, sj) in s.iter_mut().enumerate() {
                *sj ^= self.gf.mul(e, self.gf.alpha_pow(i * (j + 1)));
            }
        }
        s
    }

    /// Classifies an injected error pattern, ground truth known.
    ///
    /// Decoding policy (SSC-DSD):
    /// * all-zero syndromes → accepted (clean, or silent if `error` was a
    ///   codeword — impossible for weight ≤ 4 < d, and our injections never
    ///   exceed that undetected);
    /// * syndromes consistent with a single symbol error at a valid
    ///   location → corrected;
    /// * anything else → detected uncorrectable.
    pub fn classify_error(&self, error: &[u8; TOTAL_SYMBOLS]) -> ErrorClass {
        let weight = error.iter().filter(|&&e| e != 0).count();
        let s = self.syndromes(error);
        if s == [0; CHECK_SYMBOLS] {
            return if weight == 0 {
                ErrorClass::NoError
            } else {
                // Error is itself a codeword: undetectable. Needs weight >= 5.
                ErrorClass::SilentCorruption
            };
        }
        // Try single-error hypothesis: e·α^i = S1, e·α^2i = S2, ...
        // => α^i = S2/S1, and consistency S3 = S2·α^i, S4 = S3·α^i.
        if s[0] != 0 && s[1] != 0 {
            let loc = self.gf.div(s[1], s[0]); // α^i
            if let Some(i) = self.gf.log_of(loc) {
                if i < TOTAL_SYMBOLS
                    && self.gf.mul(s[1], loc) == s[2]
                    && self.gf.mul(s[2], loc) == s[3]
                {
                    // Correctable single-symbol hypothesis holds.
                    return if weight == 1 {
                        ErrorClass::Corrected
                    } else {
                        // A multi-symbol error masquerading as single:
                        // the decoder would miscorrect (needs weight >= 4
                        // to fool d=5; counted as silent corruption).
                        ErrorClass::SilentCorruption
                    };
                }
            }
        }
        ErrorClass::DetectedUncorrectable
    }

    /// Convenience: classify a whole-chip failure at `chip` with error
    /// value `value`.
    pub fn classify_chip_failure(&self, chip: usize, value: u8) -> ErrorClass {
        assert!(chip < TOTAL_SYMBOLS, "chip index out of range");
        let mut err = [0u8; TOTAL_SYMBOLS];
        err[chip] = value;
        self.classify_error(&err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_error_is_clean() {
        let ck = ChipKill::new();
        assert_eq!(ck.classify_error(&[0; TOTAL_SYMBOLS]), ErrorClass::NoError);
    }

    #[test]
    fn every_single_chip_failure_corrected() {
        let ck = ChipKill::new();
        for chip in 0..TOTAL_SYMBOLS {
            for value in [1u8, 0x0f, 0xf0, 0xff, 0xa5] {
                assert_eq!(
                    ck.classify_chip_failure(chip, value),
                    ErrorClass::Corrected,
                    "chip {chip} value {value:#x}"
                );
            }
        }
    }

    #[test]
    fn double_chip_failures_not_silently_accepted() {
        let ck = ChipKill::new();
        let mut corrected = 0;
        let mut silent = 0;
        for a in 0..TOTAL_SYMBOLS {
            for b in (a + 1)..TOTAL_SYMBOLS {
                let mut err = [0u8; TOTAL_SYMBOLS];
                err[a] = 0x3c;
                err[b] = 0x5a;
                match ck.classify_error(&err) {
                    ErrorClass::DetectedUncorrectable => {}
                    ErrorClass::Corrected => corrected += 1,
                    ErrorClass::SilentCorruption => silent += 1,
                    ErrorClass::NoError => panic!("double error classified clean"),
                }
            }
        }
        // Distance 5 guarantees double errors are never corrected or silent.
        assert_eq!(corrected, 0);
        assert_eq!(silent, 0);
    }

    #[test]
    fn syndromes_are_linear() {
        let ck = ChipKill::new();
        let mut e1 = [0u8; TOTAL_SYMBOLS];
        e1[3] = 0x11;
        let mut e2 = [0u8; TOTAL_SYMBOLS];
        e2[17] = 0x22;
        let mut e12 = [0u8; TOTAL_SYMBOLS];
        e12[3] = 0x11;
        e12[17] = 0x22;
        let s1 = ck.syndromes(&e1);
        let s2 = ck.syndromes(&e2);
        let s12 = ck.syndromes(&e12);
        for j in 0..CHECK_SYMBOLS {
            assert_eq!(s12[j], s1[j] ^ s2[j]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chip_out_of_range_panics() {
        ChipKill::new().classify_chip_failure(TOTAL_SYMBOLS, 1);
    }
}
