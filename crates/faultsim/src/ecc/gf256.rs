//! GF(2^8) arithmetic for the ChipKill Reed-Solomon code.
//!
//! Uses the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d) with
//! generator α = 2, via log/antilog tables built at construction.

/// GF(256) field with precomputed log/exp tables.
#[derive(Clone, Debug)]
pub struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Gf256 {
    /// Builds the field tables.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// α raised to `p` (mod 255).
    #[inline]
    pub fn alpha_pow(&self, p: usize) -> u8 {
        self.exp[p % 255]
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[255 + self.log[a as usize] as usize - self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u8) -> u8 {
        self.div(1, a)
    }

    /// Discrete logarithm base α (only defined for non-zero elements).
    #[inline]
    pub fn log_of(&self, a: u8) -> Option<usize> {
        if a == 0 {
            None
        } else {
            Some(self.log[a as usize] as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_agrees_with_schoolbook() {
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut r = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1d;
                }
                b >>= 1;
            }
            r
        }
        let f = Gf256::new();
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(5) {
                assert_eq!(f.mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        let f = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(f.mul(a, f.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn alpha_powers_cycle() {
        let f = Gf256::new();
        assert_eq!(f.alpha_pow(0), 1);
        assert_eq!(f.alpha_pow(1), 2);
        assert_eq!(f.alpha_pow(255), 1);
        // α is primitive: first 255 powers are distinct.
        let mut seen = std::collections::HashSet::new();
        for p in 0..255 {
            assert!(seen.insert(f.alpha_pow(p)));
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        Gf256::new().div(1, 0);
    }
}
