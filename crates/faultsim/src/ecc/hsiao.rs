//! Hsiao (72,64) single-error-correct / double-error-detect code.
//!
//! This is the odd-weight-column SEC-DED code used by the paper's HBM
//! (Table 1, "SEC-DED \[21\]" citing Hsiao 1970). The parity-check matrix H
//! has 72 distinct odd-weight 8-bit columns: the 8 weight-1 columns protect
//! the check bits themselves (identity part), and the 64 data columns are
//! the 56 weight-3 columns plus 8 weight-5 columns — the minimum-total-
//! weight construction from Hsiao's paper.
//!
//! Properties (verified by the tests and property tests):
//!
//! * any single-bit error yields a syndrome equal to its column (odd
//!   weight) and is corrected;
//! * any double-bit error yields a non-zero even-weight syndrome and is
//!   detected but not corrected;
//! * wider errors may alias (silent corruption) — exactly the weakness the
//!   paper exploits HBM's FIT modes against.

/// Number of data bits per codeword.
pub const DATA_BITS: usize = 64;
/// Number of check bits per codeword.
pub const CHECK_BITS: usize = 8;
/// Total codeword length.
pub const CODE_BITS: usize = DATA_BITS + CHECK_BITS;

/// Decoding outcome for a received 72-bit word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeOutcome {
    /// Zero syndrome: the word is accepted as-is.
    Clean,
    /// A single-bit error was (apparently) corrected at this codeword bit.
    Corrected {
        /// Bit position in `0..CODE_BITS` (data bits first).
        bit: usize,
    },
    /// Non-zero syndrome that is no column of H: detected uncorrectable.
    Detected,
}

/// The Hsiao (72,64) code with precomputed column table.
#[derive(Clone, Debug)]
pub struct Hsiao7264 {
    /// `columns[i]` is the 8-bit syndrome of an error in codeword bit `i`
    /// (bits `0..64` are data, `64..72` are check bits).
    columns: [u8; CODE_BITS],
    /// Maps a syndrome value to the codeword bit it identifies, or `None`.
    syndrome_to_bit: [Option<u8>; 256],
}

impl Default for Hsiao7264 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hsiao7264 {
    /// Builds the code (deterministic construction).
    pub fn new() -> Self {
        let mut columns = [0u8; CODE_BITS];
        // Data columns: all 56 weight-3 patterns, then the first 8 weight-5
        // patterns, in increasing numeric order (a fixed, documented order).
        let mut idx = 0;
        for w in [3u32, 5] {
            for v in 1u16..256 {
                let v = v as u8;
                if v.count_ones() == w {
                    if idx < DATA_BITS {
                        columns[idx] = v;
                        idx += 1;
                    }
                }
            }
        }
        debug_assert_eq!(idx, DATA_BITS);
        // Check-bit columns: identity.
        for i in 0..CHECK_BITS {
            columns[DATA_BITS + i] = 1 << i;
        }
        let mut syndrome_to_bit = [None; 256];
        for (i, &c) in columns.iter().enumerate() {
            debug_assert!(syndrome_to_bit[c as usize].is_none(), "duplicate column");
            syndrome_to_bit[c as usize] = Some(i as u8);
        }
        Hsiao7264 {
            columns,
            syndrome_to_bit,
        }
    }

    /// Computes the 8 check bits for a 64-bit data word.
    pub fn encode(&self, data: u64) -> u8 {
        // check = P * data where column i of P is columns[i].
        let mut check = 0u8;
        let mut d = data;
        let mut i = 0;
        while d != 0 {
            let tz = d.trailing_zeros() as usize;
            i += tz;
            check ^= self.columns[i];
            d >>= tz;
            d >>= 1;
            i += 1;
        }
        check
    }

    /// Syndrome of a received `(data, check)` pair.
    pub fn syndrome(&self, data: u64, check: u8) -> u8 {
        self.encode(data) ^ check
    }

    /// Decodes a received word, applying single-bit correction.
    ///
    /// Returns the outcome and the (possibly corrected) data word.
    pub fn decode(&self, data: u64, check: u8) -> (DecodeOutcome, u64) {
        let s = self.syndrome(data, check);
        if s == 0 {
            return (DecodeOutcome::Clean, data);
        }
        match self.syndrome_to_bit[s as usize] {
            Some(bit) => {
                let bit = bit as usize;
                let corrected = if bit < DATA_BITS {
                    data ^ (1u64 << bit)
                } else {
                    data // check-bit error: data unaffected
                };
                (DecodeOutcome::Corrected { bit }, corrected)
            }
            None => (DecodeOutcome::Detected, data),
        }
    }

    /// Classifies an *error pattern* (set of flipped codeword bits) against
    /// the ground truth: what would the decoder do, and is the result
    /// correct data?
    ///
    /// `error` is a 72-bit mask (bit i of the `u128` = codeword bit i).
    pub fn classify_error(&self, error: u128) -> ErrorClass {
        if error == 0 {
            return ErrorClass::NoError;
        }
        let data_err = (error & ((1u128 << DATA_BITS) - 1)) as u64;
        let check_err = ((error >> DATA_BITS) & 0xff) as u8;
        // Received word for all-zero data (linear code: WLOG).
        let check_of_zero = self.encode(0);
        let (outcome, corrected) = self.decode(data_err, check_of_zero ^ check_err);
        match outcome {
            DecodeOutcome::Clean => {
                if data_err == 0 && check_err == 0 {
                    ErrorClass::NoError
                } else {
                    // Error equals a codeword: undetectable corruption.
                    ErrorClass::SilentCorruption
                }
            }
            DecodeOutcome::Corrected { .. } => {
                if corrected == 0 {
                    ErrorClass::Corrected
                } else {
                    ErrorClass::SilentCorruption // miscorrection
                }
            }
            DecodeOutcome::Detected => ErrorClass::DetectedUncorrectable,
        }
    }
}

/// Ground-truth classification of an injected error pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// No bits were flipped.
    NoError,
    /// The decoder returned the original data.
    Corrected,
    /// The decoder flagged an uncorrectable error (DUE).
    DetectedUncorrectable,
    /// The decoder accepted or "corrected" to wrong data (SDC).
    SilentCorruption,
}

impl ErrorClass {
    /// `true` for outcomes the system experiences as an uncorrected error
    /// (both detected-uncorrectable and silent corruption).
    pub fn is_uncorrected(self) -> bool {
        matches!(
            self,
            ErrorClass::DetectedUncorrectable | ErrorClass::SilentCorruption
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_distinct_and_odd_weight() {
        let c = Hsiao7264::new();
        let mut seen = std::collections::HashSet::new();
        for &col in &c.columns {
            assert_eq!(col.count_ones() % 2, 1, "column weight must be odd");
            assert!(seen.insert(col), "duplicate column");
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        let c = Hsiao7264::new();
        for data in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            let check = c.encode(data);
            let (o, d) = c.decode(data, check);
            assert_eq!(o, DecodeOutcome::Clean);
            assert_eq!(d, data);
        }
    }

    #[test]
    fn all_single_bit_errors_corrected() {
        let c = Hsiao7264::new();
        let data = 0x0123_4567_89ab_cdefu64;
        let check = c.encode(data);
        for bit in 0..CODE_BITS {
            let (rd, rc) = if bit < DATA_BITS {
                (data ^ (1 << bit), check)
            } else {
                (data, check ^ (1 << (bit - DATA_BITS)))
            };
            let (o, d) = c.decode(rd, rc);
            assert_eq!(o, DecodeOutcome::Corrected { bit }, "bit {bit}");
            assert_eq!(d, data, "bit {bit} not restored");
        }
    }

    #[test]
    fn all_double_bit_errors_detected() {
        let c = Hsiao7264::new();
        for i in 0..CODE_BITS {
            for j in (i + 1)..CODE_BITS {
                let err = (1u128 << i) | (1u128 << j);
                assert_eq!(
                    c.classify_error(err),
                    ErrorClass::DetectedUncorrectable,
                    "double error ({i},{j}) not detected"
                );
            }
        }
    }

    #[test]
    fn single_bit_error_class_is_corrected() {
        let c = Hsiao7264::new();
        for i in 0..CODE_BITS {
            assert_eq!(c.classify_error(1u128 << i), ErrorClass::Corrected);
        }
    }

    #[test]
    fn wide_errors_are_uncorrected() {
        let c = Hsiao7264::new();
        // An 8-bit adjacent burst (one x8 device's contribution, or an HBM
        // sub-word failure) must not be silently accepted as clean+correct.
        let mut uncorrected = 0;
        for start in 0..(DATA_BITS - 8) {
            let err = 0xffu128 << start;
            if c.classify_error(err).is_uncorrected() {
                uncorrected += 1;
            }
        }
        // The vast majority of byte bursts defeat SEC-DED.
        assert!(uncorrected > 50, "only {uncorrected} bursts uncorrected");
    }

    #[test]
    fn classify_no_error() {
        assert_eq!(Hsiao7264::new().classify_error(0), ErrorClass::NoError);
    }
}
