//! FaultSim-style Monte-Carlo reliability estimation.
//!
//! Each trial simulates one rank over a mission: faults arrive as Poisson
//! processes per mode (rates from the field-study FIT table), persist until
//! the next scrub, and are evaluated against the configured ECC — directly
//! exercising the bit-exact [`crate::ecc::hsiao::Hsiao7264`] decoder for
//! SEC-DED memories and the symbol-based [`crate::ecc::chipkill::ChipKill`]
//! decoder for ChipKill memories, exactly like FaultSim's event-based
//! evaluation (Nair et al., TACO'15). The paper runs 100 K trials for
//! SEC-DED and 1 M for ChipKill; the defaults match.
//!
//! The output of interest is the **uncorrected-error FIT per GB** of each
//! memory, which the SER model (in `ramp-avf`) multiplies by per-page AVF
//! (Equation 2 of the paper).

use ramp_sim::rng::SimRng;

use crate::ecc::chipkill::{ChipKill, TOTAL_SYMBOLS};
use crate::ecc::hsiao::{ErrorClass, Hsiao7264};
use crate::fit::{FaultMode, FitRates};

/// Which error-correction scheme a memory uses (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EccScheme {
    /// Hsiao (72,64) SEC-DED — the HBM configuration.
    SecDed,
    /// Symbol-based single-ChipKill — the DDRx configuration.
    ChipKill,
}

/// Reliability configuration of one memory.
#[derive(Clone, Copy, Debug)]
pub struct RasConfig {
    /// ECC scheme protecting the memory.
    pub ecc: EccScheme,
    /// Per-device transient FIT rates.
    pub fit: FitRates,
    /// DRAM devices per rank (36 x4 parts for ChipKill DDR; the stacked
    /// die count for HBM).
    pub devices_per_rank: usize,
    /// Capacity of one rank in GiB (normalizes FIT to per-GB).
    pub capacity_per_rank_gb: f64,
    /// Patrol-scrub interval in hours (transient faults are cleaned up at
    /// the next scrub).
    pub scrub_interval_hours: f64,
    /// Mission length of one trial in hours.
    pub mission_hours: f64,
}

impl RasConfig {
    /// Table 1 DDR: 36 x4 devices per rank, 8 GiB ranks, ChipKill.
    pub fn ddr_chipkill() -> Self {
        RasConfig {
            ecc: EccScheme::ChipKill,
            fit: FitRates::jaguar_ddr(),
            devices_per_rank: 36,
            capacity_per_rank_gb: 8.0,
            scrub_interval_hours: 24.0,
            mission_hours: 8760.0,
        }
    }

    /// Table 1 HBM: a 4-die stack behind one channel pair, 1 GiB total
    /// treated as 4 x 0.25 GiB device-ranks, SEC-DED, 2.5x raw-FIT density
    /// multiplier plus a 1.5 FIT TSV-lane mode.
    pub fn hbm_secded() -> Self {
        RasConfig {
            ecc: EccScheme::SecDed,
            fit: FitRates::die_stacked(2.5, 1.5),
            devices_per_rank: 1,
            capacity_per_rank_gb: 0.25,
            scrub_interval_hours: 24.0,
            mission_hours: 8760.0,
        }
    }
}

/// Monte-Carlo outcome tallies and derived rates.
#[derive(Clone, Copy, Debug, Default)]
pub struct RasOutcome {
    /// Trials simulated.
    pub trials: u64,
    /// Faults injected in total.
    pub faults: u64,
    /// Faults fully corrected by the ECC.
    pub corrected: u64,
    /// Detected-uncorrectable events (DUE).
    pub detected_ue: u64,
    /// Silent corruptions (miscorrection or undetected).
    pub silent_ue: u64,
    /// Trials that experienced at least one uncorrected error.
    pub failed_trials: u64,
    /// Mission hours per trial (copied from the config).
    pub mission_hours: f64,
    /// Rank capacity in GiB (copied from the config).
    pub capacity_per_rank_gb: f64,
}

impl RasOutcome {
    /// Uncorrected events per trial.
    pub fn uncorrected_per_trial(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            (self.detected_ue + self.silent_ue) as f64 / self.trials as f64
        }
    }

    /// Probability a rank survives one mission without uncorrected errors.
    pub fn survival_probability(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            1.0 - self.failed_trials as f64 / self.trials as f64
        }
    }

    /// Uncorrected-error FIT per rank (events per 10^9 rank-hours).
    pub fn fit_uncorrected_per_rank(&self) -> f64 {
        if self.trials == 0 || self.mission_hours == 0.0 {
            0.0
        } else {
            self.uncorrected_per_trial() / self.mission_hours * 1e9
        }
    }

    /// Uncorrected-error FIT per GiB.
    pub fn fit_uncorrected_per_gb(&self) -> f64 {
        if self.capacity_per_rank_gb == 0.0 {
            0.0
        } else {
            self.fit_uncorrected_per_rank() / self.capacity_per_rank_gb
        }
    }
}

/// One active (unscrubbed) fault.
#[derive(Clone, Copy, Debug)]
struct ActiveFault {
    device: usize,
    /// Fraction of the device's ECC words the fault touches.
    coverage: f64,
    expires_at: f64,
}

/// Words per device (2 Gb part contributing 8 bits per codeword).
const WORDS_PER_DEVICE: f64 = (1u64 << 28) as f64;

/// Per-mode fraction of a device's words covered by one fault.
fn coverage(mode: FaultMode) -> f64 {
    match mode {
        FaultMode::SingleBit | FaultMode::SingleWord => 1.0 / WORDS_PER_DEVICE,
        FaultMode::SingleColumn => 1.0 / 1024.0,
        FaultMode::SingleRow => 1.0 / 262_144.0,
        FaultMode::SingleBank => 1.0 / 8.0,
        FaultMode::MultiBank => 0.5,
        FaultMode::MultiRank => 0.5,
        FaultMode::TsvLane => 1.0 / 32.0,
    }
}

/// Runs `trials` independent rank-mission simulations.
pub fn run_monte_carlo(cfg: &RasConfig, trials: u64, rng: &mut SimRng) -> RasOutcome {
    let hsiao = Hsiao7264::new();
    let chipkill = ChipKill::new();
    let mut out = RasOutcome {
        trials,
        mission_hours: cfg.mission_hours,
        capacity_per_rank_gb: cfg.capacity_per_rank_gb,
        ..RasOutcome::default()
    };

    for _ in 0..trials {
        let mut failed = false;
        // Draw all fault arrivals for this mission.
        let mut events: Vec<(f64, FaultMode, usize)> = Vec::new();
        for (mode, fit) in cfg.fit.iter() {
            let lambda = fit * 1e-9 * cfg.mission_hours * cfg.devices_per_rank as f64;
            let n = rng.poisson(lambda);
            for _ in 0..n {
                let t = rng.unit() * cfg.mission_hours;
                let dev = rng.below(cfg.devices_per_rank as u64) as usize;
                events.push((t, mode, dev));
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        out.faults += events.len() as u64;

        let mut active: Vec<ActiveFault> = Vec::new();
        for (t, mode, dev) in events {
            active.retain(|f| f.expires_at > t);
            // Single-fault effect.
            let class = match cfg.ecc {
                EccScheme::SecDed => classify_secded_single(&hsiao, mode, rng),
                EccScheme::ChipKill => classify_chipkill_single(&chipkill, mode, dev, rng),
            };
            match class {
                ErrorClass::Corrected | ErrorClass::NoError => out.corrected += 1,
                ErrorClass::DetectedUncorrectable => {
                    out.detected_ue += 1;
                    failed = true;
                }
                ErrorClass::SilentCorruption => {
                    out.silent_ue += 1;
                    failed = true;
                }
            }
            // Double-fault interaction with still-active faults.
            let cov = coverage(mode);
            if class == ErrorClass::Corrected || class == ErrorClass::NoError {
                for f in &active {
                    let same_device = f.device == dev;
                    if same_device {
                        // Same-device overlaps merge into a wider error in
                        // the same symbol/word provider; for ChipKill the
                        // symbol still corrects, for SEC-DED the merged
                        // pattern usually already failed at injection.
                        continue;
                    }
                    let expected_overlap = f.coverage * cov * WORDS_PER_DEVICE;
                    let p = expected_overlap.min(1.0);
                    if rng.chance(p) {
                        // Two devices corrupt the same codeword.
                        out.detected_ue += 1;
                        failed = true;
                        break;
                    }
                }
            }
            let next_scrub = (t / cfg.scrub_interval_hours).floor() * cfg.scrub_interval_hours
                + cfg.scrub_interval_hours;
            active.push(ActiveFault {
                device: dev,
                coverage: cov,
                expires_at: next_scrub,
            });
        }
        if failed {
            out.failed_trials += 1;
        }
    }
    out
}

/// Error pattern of one fault mode within a 72-bit SEC-DED word supplied
/// entirely by the (single) stacked die.
fn classify_secded_single(hsiao: &Hsiao7264, mode: FaultMode, rng: &mut SimRng) -> ErrorClass {
    let mask: u128 = match mode {
        FaultMode::SingleBit | FaultMode::SingleColumn => {
            // One bit per affected word.
            1u128 << rng.below(72)
        }
        FaultMode::SingleWord => {
            // A few bits within one word.
            let n = 2 + rng.below(3);
            let mut m = 0u128;
            for _ in 0..n {
                m |= 1u128 << rng.below(72);
            }
            m
        }
        FaultMode::SingleRow
        | FaultMode::SingleBank
        | FaultMode::MultiBank
        | FaultMode::MultiRank => {
            // A whole device row: an aligned 8-bit burst of the word.
            let byte = rng.below(9);
            0xffu128 << (8 * byte)
        }
        FaultMode::TsvLane => {
            // A 4-bit data lane stuck across the burst.
            let lane = rng.below(18);
            0xfu128 << (4 * lane)
        }
    };
    hsiao.classify_error(mask)
}

/// Error pattern of one fault mode against the ChipKill code: every
/// single-device mode corrupts exactly one symbol (possibly in many words);
/// the per-word classification is what matters.
fn classify_chipkill_single(
    ck: &ChipKill,
    mode: FaultMode,
    dev: usize,
    rng: &mut SimRng,
) -> ErrorClass {
    let symbol = dev % TOTAL_SYMBOLS;
    match mode {
        FaultMode::MultiRank => {
            // Command/address fault: corrupts the same symbol position in
            // both ranks; still one symbol per codeword.
            let v = 1 + rng.below(255) as u8;
            ck.classify_chip_failure(symbol, v)
        }
        _ => {
            let v = 1 + rng.below(255) as u8;
            ck.classify_chip_failure(symbol, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chipkill_corrects_almost_everything() {
        let cfg = RasConfig::ddr_chipkill();
        let mut rng = SimRng::from_seed(7);
        let out = run_monte_carlo(&cfg, 200_000, &mut rng);
        assert!(out.faults > 500, "expected some faults, got {}", out.faults);
        let unc_ratio = (out.detected_ue + out.silent_ue) as f64 / out.faults as f64;
        assert!(
            unc_ratio < 0.01,
            "ChipKill uncorrected ratio {unc_ratio} too high"
        );
    }

    #[test]
    fn secded_fails_on_large_granularity_modes() {
        let cfg = RasConfig::hbm_secded();
        let mut rng = SimRng::from_seed(9);
        let out = run_monte_carlo(&cfg, 500_000, &mut rng);
        assert!(
            out.detected_ue + out.silent_ue > 0,
            "SEC-DED must fail sometimes"
        );
        // Single-bit faults dominate arrivals and are all corrected, so the
        // corrected count must also be substantial.
        assert!(out.corrected > 0);
    }

    #[test]
    fn hbm_per_gb_uncorrected_fit_exceeds_ddr() {
        let mut rng = SimRng::from_seed(11);
        let hbm = run_monte_carlo(&RasConfig::hbm_secded(), 500_000, &mut rng);
        let ddr = run_monte_carlo(&RasConfig::ddr_chipkill(), 100_000, &mut rng);
        let h = hbm.fit_uncorrected_per_gb();
        let d = ddr.fit_uncorrected_per_gb();
        assert!(h > 1.0, "HBM FIT/GB {h} too low");
        assert!(h > d * 100.0, "HBM ({h}) vs DDR ({d}) gap too small");
    }

    #[test]
    fn outcome_rates_consistent() {
        let mut o = RasOutcome {
            trials: 100,
            detected_ue: 5,
            silent_ue: 5,
            failed_trials: 9,
            mission_hours: 1000.0,
            capacity_per_rank_gb: 2.0,
            ..RasOutcome::default()
        };
        assert!((o.uncorrected_per_trial() - 0.1).abs() < 1e-12);
        assert!((o.survival_probability() - 0.91).abs() < 1e-12);
        assert!((o.fit_uncorrected_per_rank() - 1e5).abs() < 1e-6);
        assert!((o.fit_uncorrected_per_gb() - 5e4).abs() < 1e-6);
        o.trials = 0;
        assert_eq!(o.uncorrected_per_trial(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = RasConfig::hbm_secded();
        let a = run_monte_carlo(&cfg, 2_000, &mut SimRng::from_seed(3));
        let b = run_monte_carlo(&cfg, 2_000, &mut SimRng::from_seed(3));
        assert_eq!(a.detected_ue, b.detected_ue);
        assert_eq!(a.faults, b.faults);
    }
}
