//! Field-measured DRAM FIT rates.
//!
//! The paper feeds FaultSim with transient-fault FIT rates from the AMD
//! field study of the ORNL Jaguar system (Sridharan & Liberty, SC'12,
//! ~2.69 M DRAM devices over 11 months). The per-device transient rates
//! below are the published per-mode numbers (FIT = failures per 10^9
//! device-hours). HBM rates are derived from the DDR rates with a density
//! multiplier plus a TSV failure mode, per the substitution note in
//! DESIGN.md (die-stacked parts have higher raw fault rates and failure
//! modes that planar DDR lacks; Nair et al. \[43,44\]).

/// A transient-fault mode at DRAM-device granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// One bit flips.
    SingleBit,
    /// A handful of bits within one device word.
    SingleWord,
    /// One bit-line: a single bit position across every row.
    SingleColumn,
    /// One word-line: every bit of one device row.
    SingleRow,
    /// A full bank.
    SingleBank,
    /// Multiple banks of one device.
    MultiBank,
    /// A rank-wide fault (shared command/address circuitry).
    MultiRank,
    /// A through-silicon-via data-lane fault (die-stacked parts only).
    TsvLane,
}

impl FaultMode {
    /// All modes, in the order used by the FIT table.
    pub const ALL: [FaultMode; 8] = [
        FaultMode::SingleBit,
        FaultMode::SingleWord,
        FaultMode::SingleColumn,
        FaultMode::SingleRow,
        FaultMode::SingleBank,
        FaultMode::MultiBank,
        FaultMode::MultiRank,
        FaultMode::TsvLane,
    ];
}

impl std::fmt::Display for FaultMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultMode::SingleBit => "single-bit",
            FaultMode::SingleWord => "single-word",
            FaultMode::SingleColumn => "single-column",
            FaultMode::SingleRow => "single-row",
            FaultMode::SingleBank => "single-bank",
            FaultMode::MultiBank => "multi-bank",
            FaultMode::MultiRank => "multi-rank",
            FaultMode::TsvLane => "tsv-lane",
        };
        f.write_str(s)
    }
}

/// Transient FIT per device for every fault mode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitRates {
    rates: [f64; 8],
}

impl FitRates {
    /// The SC'12 Jaguar field-study transient rates for planar DDR devices
    /// (FIT per device).
    pub fn jaguar_ddr() -> Self {
        let mut rates = [0.0; 8];
        rates[0] = 14.2; // single-bit
        rates[1] = 1.4; // single-word
        rates[2] = 1.4; // single-column
        rates[3] = 0.2; // single-row
        rates[4] = 0.8; // single-bank
        rates[5] = 0.3; // multi-bank
        rates[6] = 0.9; // multi-rank
        rates[7] = 0.0; // no TSVs in planar parts
        FitRates { rates }
    }

    /// Die-stacked (HBM) rates: DDR rates scaled by `density_multiplier`
    /// plus a TSV-lane mode at `tsv_fit` FIT per device.
    ///
    /// # Panics
    ///
    /// Panics if `density_multiplier < 1.0` or `tsv_fit < 0.0`.
    pub fn die_stacked(density_multiplier: f64, tsv_fit: f64) -> Self {
        assert!(density_multiplier >= 1.0, "stacked parts are denser");
        assert!(tsv_fit >= 0.0);
        let mut rates = Self::jaguar_ddr().rates;
        for r in &mut rates {
            *r *= density_multiplier;
        }
        rates[7] = tsv_fit;
        FitRates { rates }
    }

    /// FIT for one mode.
    pub fn rate(&self, mode: FaultMode) -> f64 {
        self.rates[mode as usize]
    }

    /// Total FIT per device across modes.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Iterator over `(mode, fit)` pairs with non-zero rates.
    pub fn iter(&self) -> impl Iterator<Item = (FaultMode, f64)> + '_ {
        FaultMode::ALL
            .into_iter()
            .map(move |m| (m, self.rate(m)))
            .filter(|&(_, r)| r > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaguar_rates_match_field_study() {
        let f = FitRates::jaguar_ddr();
        assert_eq!(f.rate(FaultMode::SingleBit), 14.2);
        assert_eq!(f.rate(FaultMode::TsvLane), 0.0);
        assert!((f.total() - 19.2).abs() < 1e-9);
    }

    #[test]
    fn die_stacked_scales_and_adds_tsv() {
        let f = FitRates::die_stacked(2.0, 1.5);
        assert_eq!(f.rate(FaultMode::SingleBit), 28.4);
        assert_eq!(f.rate(FaultMode::TsvLane), 1.5);
        assert!(f.total() > FitRates::jaguar_ddr().total() * 2.0);
    }

    #[test]
    #[should_panic(expected = "denser")]
    fn sub_unity_multiplier_rejected() {
        FitRates::die_stacked(0.5, 0.0);
    }

    #[test]
    fn iter_skips_zero_modes() {
        let modes: Vec<_> = FitRates::jaguar_ddr().iter().map(|(m, _)| m).collect();
        assert_eq!(modes.len(), 7);
        assert!(!modes.contains(&FaultMode::TsvLane));
    }
}
