//! Event-based DRAM fault and ECC simulation for RAMP (FaultSim substitute).
//!
//! The paper quantifies each memory's vulnerability with FaultSim (Nair et
//! al., TACO'15) driven by field-measured FIT rates from a large-scale AMD
//! study (Sridharan & Liberty, SC'12). This crate rebuilds that pipeline:
//!
//! * [`fit`] — the published per-device transient FIT rates, plus derived
//!   die-stacked rates (density multiplier + TSV fault mode);
//! * [`ecc`] — bit-exact Hsiao (72,64) SEC-DED and a GF(256) Reed-Solomon
//!   single-ChipKill decoder;
//! * [`montecarlo`] — FaultSim-style Monte-Carlo trials that inject faults
//!   by mode, apply the ECC and classify outcomes as corrected, detected-
//!   uncorrectable or silent corruption.
//!
//! Its headline product is the uncorrected-error FIT per GiB of each
//! memory, consumed by the SER model in `ramp-avf` (Equation 2).
//!
//! ```
//! use ramp_faultsim::{run_monte_carlo, RasConfig};
//! use ramp_sim::SimRng;
//!
//! let out = run_monte_carlo(&RasConfig::hbm_secded(), 1_000, &mut SimRng::from_seed(1));
//! assert_eq!(out.trials, 1_000);
//! assert!(out.survival_probability() <= 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ecc;
pub mod fit;
pub mod montecarlo;

pub use ecc::{ChipKill, ErrorClass, Hsiao7264};
pub use fit::{FaultMode, FitRates};
pub use montecarlo::{run_monte_carlo, EccScheme, RasConfig, RasOutcome};
