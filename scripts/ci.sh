#!/usr/bin/env bash
# CI gate: hermetic build + full test suite, no network access.
#
# The workspace has zero external dependencies, so everything below must
# succeed with --offline on a machine that has never populated a cargo
# registry cache. Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --workspace --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

# Golden-snapshot determinism gate: the telemetry JSON must be
# byte-identical to tests/golden/smoke_stats.json at both thread counts,
# so a thread-count leak into the payload fails fast here.
echo "==> golden snapshots @ RAMP_THREADS=1"
RAMP_THREADS=1 cargo test -q --offline -p ramp --test golden_stats

echo "==> golden snapshots @ RAMP_THREADS=4"
RAMP_THREADS=4 cargo test -q --offline -p ramp --test golden_stats

echo "CI OK"
