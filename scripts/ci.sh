#!/usr/bin/env bash
# CI gate: hermetic build + full test suite, no network access.
#
# The workspace has zero external dependencies, so everything below must
# succeed with --offline on a machine that has never populated a cargo
# registry cache. Run from anywhere inside the repository.

set -euo pipefail
cd "$(dirname "$0")/.."

# Optional stage selector. Without an argument the full hermetic gate
# below runs (build + tests + golden/warm/chaos/checkpoint/sweep/wal/
# shard smokes + bench-smoke). `bench` and `bench-smoke` run the performance scorecard
# gate on its own: re-measure the pinned kernel suite and the
# all_experiments cold/warm probes, then compare against the committed
# BENCH_0007.json (see DESIGN.md "Performance methodology"). Schema
# drift is always fatal; a kernel or probe regression beyond the
# tolerance band fails the stage. Fast mode shrinks the probe budget,
# so probes are structurally checked but not compared there — kernels
# still are, with a wider band to absorb shared-runner noise.
bench_stage() {
    local fast="$1" tol="$2"
    echo "==> cargo build --release (scorecard + all_experiments)"
    cargo build --release --offline -p ramp-bench \
        --bin scorecard --bin all_experiments
    if [ "$fast" = 1 ]; then
        echo "==> RAMP_BENCH_FAST=1 scorecard check BENCH_0007.json --tol $tol"
        RAMP_BENCH_FAST=1 target/release/scorecard check BENCH_0007.json --tol "$tol"
    else
        echo "==> scorecard check BENCH_0007.json --tol $tol"
        target/release/scorecard check BENCH_0007.json --tol "$tol"
    fi
}
# WAL durability gate (`wal-smoke`, also part of the full pipeline): the
# same experiment must survive the WAL backend's whole failure menu with
# byte-identical stdout throughout — injected append faults on a cold
# run, a warm replay, a kill mid-append (simulated by tearing the tail
# off the newest segment), compaction — and `ramp-store verify` must
# report the store sound after every recovery (see DESIGN.md §11).
wal_smoke_stage() {
    local dir run_env seg size
    dir="$(mktemp -d)"
    # shellcheck disable=SC2064
    trap "rm -rf '$dir'" RETURN
    run_env=(RAMP_STORE_DIR="$dir/store" RAMP_STORE_MODE=wal
        RAMP_WORKLOADS=lbm,mcf RAMP_INSTS=100000 RAMP_STATS=json)

    echo "==> wal-smoke: cold run under injected WAL faults (seed 404)"
    env "${run_env[@]}" RAMP_CHAOS="404:io=0.2,slow=1ms" \
        target/release/fig05_perf_static > "$dir/cold.out" 2>/dev/null
    echo "==> wal-smoke: warm replay is byte-identical, verify clean"
    env "${run_env[@]}" target/release/fig05_perf_static \
        > "$dir/warm.out" 2> "$dir/warm.err"
    cmp "$dir/cold.out" "$dir/warm.out" \
        || { echo "FAIL: WAL warm stdout differs from cold stdout"; exit 1; }
    target/release/ramp-store verify --dir "$dir/store" --mode wal \
        || { echo "FAIL: WAL store not sound after warm replay"; exit 1; }

    echo "==> wal-smoke: kill mid-append (torn segment tail), reopen heals"
    seg="$(ls "$dir/store/wal"/seg-*.wal | sort | tail -n1)"
    size="$(wc -c < "$seg")"
    [ "$size" -gt 9 ] || { echo "FAIL: newest WAL segment too small to tear"; exit 1; }
    head -c "$((size - 9))" "$seg" > "$seg.torn" && mv "$seg.torn" "$seg"
    env "${run_env[@]}" target/release/fig05_perf_static \
        > "$dir/healed.out" 2>/dev/null
    cmp "$dir/cold.out" "$dir/healed.out" \
        || { echo "FAIL: stdout differs after torn-tail replay"; exit 1; }
    target/release/ramp-store verify --dir "$dir/store" --mode wal \
        || { echo "FAIL: WAL store not sound after torn-tail recovery"; exit 1; }

    echo "==> wal-smoke: compaction preserves every fetch byte-for-byte"
    target/release/ramp-store compact --dir "$dir/store" \
        || { echo "FAIL: compaction failed"; exit 1; }
    env "${run_env[@]}" target/release/fig05_perf_static \
        > "$dir/compacted.out" 2> "$dir/compacted.err"
    cmp "$dir/cold.out" "$dir/compacted.out" \
        || { echo "FAIL: stdout differs after compaction"; exit 1; }
    if grep -qE '^\[(profile|static)\]' "$dir/compacted.err"; then
        echo "FAIL: post-compaction run simulated instead of hitting the WAL"
        exit 1
    fi
    target/release/ramp-store verify --dir "$dir/store" --mode wal \
        || { echo "FAIL: WAL store not sound after compaction"; exit 1; }
}
# Sweep gate (`sweep-smoke`, also part of the full pipeline): the pinned
# 64-point examples/sweep_frontier.toml grid must produce byte-identical
# artifacts at 1 and 4 threads from fresh stores, and a warm re-sweep
# against the populated store must perform zero simulations — asserted
# both from the sweep's own `[sweep]` summary line and from the store's
# run count staying put (see DESIGN.md §12).
sweep_smoke_stage() {
    local dir before after
    dir="$(mktemp -d)"
    # shellcheck disable=SC2064
    trap "rm -rf '$dir'" RETURN

    echo "==> sweep-smoke: cold 64-point sweep @ RAMP_THREADS=1"
    RAMP_STORE_DIR="$dir/store1" RAMP_THREADS=1 target/release/ramp-sweep \
        run examples/sweep_frontier.toml --out "$dir/t1.json" > "$dir/t1.out"
    echo "==> sweep-smoke: cold 64-point sweep @ RAMP_THREADS=4"
    RAMP_STORE_DIR="$dir/store4" RAMP_THREADS=4 target/release/ramp-sweep \
        run examples/sweep_frontier.toml --out "$dir/t4.json" > "$dir/t4.out"
    cmp "$dir/t1.json" "$dir/t4.json" \
        || { echo "FAIL: sweep artifact differs across thread counts"; exit 1; }
    grep -qE '^\[sweep\] points=64 ' "$dir/t1.out" \
        || { echo "FAIL: sweep did not evaluate the pinned 64 points"; exit 1; }

    echo "==> sweep-smoke: warm re-sweep performs zero simulations"
    before="$(target/release/ramp-store stats --dir "$dir/store1" | grep -oE ' runs=[0-9]+')"
    RAMP_STORE_DIR="$dir/store1" RAMP_THREADS=4 target/release/ramp-sweep \
        run examples/sweep_frontier.toml --out "$dir/warm.json" > "$dir/warm.out"
    grep -qE ' cached=64 simulated=0 profile_sims=0 ' "$dir/warm.out" \
        || { echo "FAIL: warm re-sweep simulated instead of hitting the store"; exit 1; }
    cmp "$dir/t1.json" "$dir/warm.json" \
        || { echo "FAIL: warm sweep artifact differs from cold artifact"; exit 1; }
    after="$(target/release/ramp-store stats --dir "$dir/store1" | grep -oE ' runs=[0-9]+')"
    [ "$before" = "$after" ] \
        || { echo "FAIL: warm re-sweep grew the store ($before -> $after)"; exit 1; }
}
# Sharded-fleet gate (`shard-smoke`, also part of the full pipeline):
# three `ramp-served` shards fronted by `ramp-router` with replication
# factor 2 (see DESIGN.md §13). The pinned 64-point
# examples/sweep_fleet.toml grid is swept cold through the router, the
# hinted-handoff mirror queue is drained, and then (a) a warm re-sweep
# must perform zero simulations with a byte-identical artifact, and
# (b) after SIGKILLing one shard the sweep must *still* perform zero
# simulations — every key's surviving replica is warm — produce the
# same bytes again, and leave a non-zero `router.failover` counter in
# the router's /stats. The probe interval is set long so the dead shard
# stays in the map during the post-kill sweep: the bytes must survive
# per-request failover, not just health-check eviction.
shard_smoke_stage() {
    local dir raddr addr pending stats accepted completed failed expired deadline i
    dir="$(mktemp -d)"
    # shellcheck disable=SC2064
    trap "rm -rf '$dir'" RETURN

    counter() { # counter VALUE_NAME < stats-json
        grep -o "\"$1\": {\"type\":\"counter\",\"value\":[0-9]*" \
            | head -n1 | grep -o '[0-9]*$' || echo 0
    }

    echo "==> shard-smoke: booting 3 shards + router (replicas=2)"
    SHARD_PIDS=()
    for i in 0 1 2; do
        RAMP_STORE_DIR="$dir/shard$i-store" RAMP_INSTS=20000 \
            target/release/ramp-served --smoke --addr 127.0.0.1:0 \
            --workers 2 --queue 64 --port-file "$dir/shard$i.port" \
            > "$dir/shard$i.out" 2> "$dir/shard$i.err" &
        SHARD_PIDS+=($!)
    done
    for i in 0 1 2; do
        for _ in $(seq 1 100); do [ -s "$dir/shard$i.port" ] && break; sleep 0.1; done
        [ -s "$dir/shard$i.port" ] || { echo "FAIL: shard $i never wrote its port file"; exit 1; }
    done
    target/release/ramp-router --addr 127.0.0.1:0 --replicas 2 --probe-ms 5000 \
        --shard "$(cat "$dir/shard0.port")" --shard "$(cat "$dir/shard1.port")" \
        --shard "$(cat "$dir/shard2.port")" --port-file "$dir/router.port" \
        > "$dir/router.out" 2> "$dir/router.err" &
    ROUTER_PID=$!
    for _ in $(seq 1 100); do [ -s "$dir/router.port" ] && break; sleep 0.1; done
    [ -s "$dir/router.port" ] || { echo "FAIL: router never wrote its port file"; exit 1; }
    raddr="$(cat "$dir/router.port")"

    echo "==> shard-smoke: cold 64-point sweep through the router"
    target/release/ramp-sweep run examples/sweep_fleet.toml \
        --remote "$raddr" --out "$dir/cold.json" > "$dir/cold.out"
    grep -qE '^\[sweep\] points=64 ' "$dir/cold.out" \
        || { echo "FAIL: fleet sweep did not evaluate the pinned 64 points"; exit 1; }

    echo "==> shard-smoke: draining hinted-handoff mirrors"
    deadline=$((SECONDS + 60))
    while :; do
        pending="$(target/release/ramp-client --addr "$raddr" stats \
            | grep -o '"handoff_pending": {"type":"gauge","value":[0-9.]*' \
            | grep -o '[0-9.]*$' || echo 1)"
        [ "${pending%%.*}" = 0 ] && break
        [ "$SECONDS" -lt "$deadline" ] \
            || { echo "FAIL: handoff queue never drained ($pending pending)"; exit 1; }
        sleep 0.2
    done
    for i in 0 1 2; do # mirrors are real jobs; wait for every shard to finish them
        addr="$(cat "$dir/shard$i.port")"
        deadline=$((SECONDS + 60))
        while :; do
            stats="$(target/release/ramp-client --addr "$addr" stats)"
            accepted="$(echo "$stats" | counter accepted)"
            completed="$(echo "$stats" | counter completed)"
            failed="$(echo "$stats" | counter failed)"
            expired="$(echo "$stats" | counter expired)"
            [ "$accepted" = "$((completed + failed + expired))" ] && break
            [ "$SECONDS" -lt "$deadline" ] \
                || { echo "FAIL: shard $i never drained ($accepted accepted, $completed done)"; exit 1; }
            sleep 0.2
        done
    done

    echo "==> shard-smoke: warm fleet sweep performs zero simulations"
    target/release/ramp-sweep run examples/sweep_fleet.toml \
        --remote "$raddr" --out "$dir/warm.json" > "$dir/warm.out"
    grep -qE ' cached=64 simulated=0 profile_sims=0$' "$dir/warm.out" \
        || { echo "FAIL: warm fleet sweep simulated instead of hitting the shards"; exit 1; }
    cmp "$dir/cold.json" "$dir/warm.json" \
        || { echo "FAIL: warm fleet artifact differs from cold artifact"; exit 1; }

    echo "==> shard-smoke: SIGKILL shard 1, re-sweep must be byte-identical"
    kill -9 "${SHARD_PIDS[1]}"
    wait "${SHARD_PIDS[1]}" 2>/dev/null || true
    target/release/ramp-sweep run examples/sweep_fleet.toml \
        --remote "$raddr" --out "$dir/postkill.json" > "$dir/postkill.out"
    grep -qE ' cached=64 simulated=0 profile_sims=0$' "$dir/postkill.out" \
        || { echo "FAIL: post-kill sweep simulated — the surviving replicas were cold"; exit 1; }
    cmp "$dir/cold.json" "$dir/postkill.json" \
        || { echo "FAIL: artifact differs after killing a shard"; exit 1; }
    target/release/ramp-client --addr "$raddr" stats > "$dir/router-stats.json"
    grep -q '"failover": {"type":"counter","value":[1-9]' "$dir/router-stats.json" \
        || { echo "FAIL: router recorded no failover after the kill"; exit 1; }

    echo "==> shard-smoke: graceful teardown"
    target/release/ramp-client --addr "$raddr" shutdown > /dev/null
    wait "$ROUTER_PID" || { echo "FAIL: router exited non-zero"; exit 1; }
    for i in 0 2; do
        target/release/ramp-client --addr "$(cat "$dir/shard$i.port")" shutdown > /dev/null
        wait "${SHARD_PIDS[$i]}" || { echo "FAIL: shard $i exited non-zero"; exit 1; }
    done
}
case "${1:-all}" in
bench) bench_stage 0 1.6; exit 0 ;;
bench-smoke) bench_stage 1 2.5; exit 0 ;;
sweep-smoke)
    echo "==> cargo build --release (ramp-sweep + ramp-store)"
    cargo build --release --offline -p ramp-sweep --bin ramp-sweep
    cargo build --release --offline -p ramp-serve --bin ramp-store
    sweep_smoke_stage
    exit 0
    ;;
wal-smoke)
    echo "==> cargo build --release (fig05_perf_static + ramp-store)"
    cargo build --release --offline -p ramp-bench --bin fig05_perf_static
    cargo build --release --offline -p ramp-serve --bin ramp-store
    wal_smoke_stage
    exit 0
    ;;
shard-smoke)
    echo "==> cargo build --release (fleet binaries)"
    cargo build --release --offline -p ramp-serve \
        --bin ramp-served --bin ramp-router --bin ramp-client
    cargo build --release --offline -p ramp-sweep --bin ramp-sweep
    shard_smoke_stage
    exit 0
    ;;
all) ;;
*)
    echo "usage: $0 [bench|bench-smoke|sweep-smoke|wal-smoke|shard-smoke]" >&2
    exit 2
    ;;
esac

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --workspace --offline

echo "==> cargo test -q --offline"
cargo test -q --workspace --offline

# Golden-snapshot determinism gate: the telemetry JSON must be
# byte-identical to tests/golden/smoke_stats.json at both thread counts,
# so a thread-count leak into the payload fails fast here.
echo "==> golden snapshots @ RAMP_THREADS=1"
RAMP_THREADS=1 cargo test -q --offline -p ramp --test golden_stats

echo "==> golden snapshots @ RAMP_THREADS=4"
RAMP_THREADS=4 cargo test -q --offline -p ramp --test golden_stats

# Warm-start gate: a second invocation of an experiment binary must be
# served entirely from the run store — zero simulations, byte-identical
# stdout — and the table epilogue must show actual store hits.
echo "==> warm-start byte-identity (fig05_perf_static)"
STORE_DIR="$(mktemp -d)"
WARM_ENV=(RAMP_STORE_DIR="$STORE_DIR" RAMP_WORKLOADS=lbm,mcf RAMP_INSTS=100000)
trap 'rm -rf "$STORE_DIR"' EXIT
env "${WARM_ENV[@]}" RAMP_STATS=json target/release/fig05_perf_static \
    > "$STORE_DIR/cold.out" 2> "$STORE_DIR/cold.err"
env "${WARM_ENV[@]}" RAMP_STATS=json target/release/fig05_perf_static \
    > "$STORE_DIR/warm.out" 2> "$STORE_DIR/warm.err"
cmp "$STORE_DIR/cold.out" "$STORE_DIR/warm.out" \
    || { echo "FAIL: warm stdout differs from cold stdout"; exit 1; }
if grep -qE '^\[(profile|static)\]' "$STORE_DIR/warm.err"; then
    echo "FAIL: warm run simulated instead of hitting the store"
    exit 1
fi
env "${WARM_ENV[@]}" RAMP_STATS=table target/release/fig05_perf_static \
    > "$STORE_DIR/table.out" 2>/dev/null
grep -A6 '\[store\]' "$STORE_DIR/table.out" | grep -qE 'hits = [1-9]' \
    || { echo "FAIL: store hits not reported in table epilogue"; exit 1; }

# Server smoke: ramp-served + ramp-client choreography — health, submit,
# poll, fetch-by-key, cached resubmit, a burst that must see one 429,
# then graceful drain-and-exit shutdown.
echo "==> server smoke (ramp-served / ramp-client)"
PORT_FILE="$STORE_DIR/port"
RAMP_STORE_DIR="$STORE_DIR/server-store" target/release/ramp-served \
    --smoke --addr 127.0.0.1:0 --workers 1 --queue 1 --port-file "$PORT_FILE" \
    2> "$STORE_DIR/served.err" &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -s "$PORT_FILE" ] && break; sleep 0.1; done
[ -s "$PORT_FILE" ] || { echo "FAIL: server never wrote its port file"; exit 1; }
target/release/ramp-client --addr "$(cat "$PORT_FILE")" smoke
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; exit 1; }

# Chaos smoke: the same gates must hold under deterministic fault
# injection (RAMP_CHAOS, see DESIGN.md "Failure model & chaos testing").
# Fixed seeds keep the runs reproducible: injected store faults must
# degrade to cold-cache behavior with byte-identical stdout, deliberate
# on-disk damage must be quarantined by `ramp-store scrub`, and the
# server choreography must ride out injected resets via client retries.
echo "==> chaos-smoke: experiment under store faults (seed 101)"
CHAOS_DIR="$STORE_DIR/chaos-store"
env "${WARM_ENV[@]}" RAMP_STORE_DIR="$CHAOS_DIR" RAMP_STATS=json \
    RAMP_CHAOS="101:io=0.25,slow=1ms" target/release/fig05_perf_static \
    > "$STORE_DIR/chaos1.out" 2> "$STORE_DIR/chaos1.err"
cmp "$STORE_DIR/cold.out" "$STORE_DIR/chaos1.out" \
    || { echo "FAIL: chaos stdout differs from fault-free stdout"; exit 1; }

echo "==> chaos-smoke: scrub quarantines deliberate damage"
VICTIM="$(ls "$CHAOS_DIR"/*.run 2>/dev/null | head -n1 || true)"
[ -n "$VICTIM" ] || { echo "FAIL: chaos store persisted nothing"; exit 1; }
head -c 7 "$VICTIM" > "$VICTIM.cut" && mv "$VICTIM.cut" "$VICTIM"
target/release/ramp-store scrub --dir "$CHAOS_DIR" > "$STORE_DIR/scrub.out"
cat "$STORE_DIR/scrub.out"
grep -qE ' quarantined=[1-9]' "$STORE_DIR/scrub.out" \
    || { echo "FAIL: scrub did not quarantine the damaged entry"; exit 1; }

echo "==> chaos-smoke: healing replay (seed 202)"
env "${WARM_ENV[@]}" RAMP_STORE_DIR="$CHAOS_DIR" RAMP_STATS=json \
    RAMP_CHAOS="202:io=0.2" target/release/fig05_perf_static \
    > "$STORE_DIR/chaos2.out" 2>/dev/null
cmp "$STORE_DIR/cold.out" "$STORE_DIR/chaos2.out" \
    || { echo "FAIL: healing replay differs from fault-free stdout"; exit 1; }

# Checkpoint-smoke: kill an experiment at its first checkpoint (the
# sim.checkpoint chaos site fires only after the segment is durable),
# verify the trail is visible to `ramp-store ckpt`, then resume against
# the same store — the resumed run must report the recovery on stderr,
# clean up its trail, and produce stdout byte-identical to an
# uninterrupted run of the same config. Needs more instructions than
# WARM_ENV so the paper config's 400k-cycle epoch actually fires.
echo "==> checkpoint-smoke: kill at first checkpoint (seed 303), resume byte-identical"
CKPT_DIR="$STORE_DIR/ckpt-store"
CKPT_ENV=(RAMP_WORKLOADS=lbm,mcf RAMP_INSTS=400000 RAMP_STATS=json RAMP_CKPT_EPOCHS=1)
env "${CKPT_ENV[@]}" RAMP_STORE_DIR="$CKPT_DIR" RAMP_CHAOS="303:panic=1.0" \
    target/release/fig05_perf_static \
    > "$STORE_DIR/ckpt-kill.out" 2> "$STORE_DIR/ckpt-kill.err" || true
target/release/ramp-store ckpt --dir "$CKPT_DIR" > "$STORE_DIR/ckpt-list.out"
cat "$STORE_DIR/ckpt-list.out"
grep -qE 'segments=[1-9]' "$STORE_DIR/ckpt-list.out" \
    || { echo "FAIL: killed run left no checkpoint segments"; exit 1; }
env "${CKPT_ENV[@]}" RAMP_STORE_DIR="$CKPT_DIR" target/release/fig05_perf_static \
    > "$STORE_DIR/ckpt-resume.out" 2> "$STORE_DIR/ckpt-resume.err"
grep -q '^\[ckpt\] resumed ' "$STORE_DIR/ckpt-resume.err" \
    || { echo "FAIL: resume run did not report recovering from a checkpoint"; exit 1; }
env "${CKPT_ENV[@]}" RAMP_STORE_DIR="$STORE_DIR/ckpt-baseline" \
    target/release/fig05_perf_static > "$STORE_DIR/ckpt-base.out" 2>/dev/null
cmp "$STORE_DIR/ckpt-base.out" "$STORE_DIR/ckpt-resume.out" \
    || { echo "FAIL: resumed stdout differs from uninterrupted stdout"; exit 1; }
target/release/ramp-store ckpt --dir "$CKPT_DIR" > "$STORE_DIR/ckpt-after.out"
grep -q 'segments=0' "$STORE_DIR/ckpt-after.out" \
    || { echo "FAIL: completed resume left checkpoint segments behind"; exit 1; }

echo "==> chaos-smoke: server choreography under injected resets (seed 7)"
PORT_FILE2="$STORE_DIR/chaos-port"
RAMP_STORE_DIR="$STORE_DIR/chaos-server-store" RAMP_CHAOS="7:net=0.05,slow=2ms" \
    target/release/ramp-served --smoke --addr 127.0.0.1:0 --workers 1 --queue 1 \
    --port-file "$PORT_FILE2" 2> "$STORE_DIR/chaos-served.err" &
SERVER_PID=$!
for _ in $(seq 1 100); do [ -s "$PORT_FILE2" ] && break; sleep 0.1; done
[ -s "$PORT_FILE2" ] || { echo "FAIL: chaos server never wrote its port file"; exit 1; }
target/release/ramp-client --addr "$(cat "$PORT_FILE2")" --retries 8 --backoff-ms 10 smoke
wait "$SERVER_PID" || { echo "FAIL: chaos server exited non-zero"; exit 1; }

# Sweep determinism gate (binaries already built above).
sweep_smoke_stage

# WAL durability gate (binaries already built above).
wal_smoke_stage

# Sharded-fleet gate (binaries already built above).
shard_smoke_stage

# Bench-smoke rides along with the full gate: the release binaries are
# already built above, so this only costs the fast kernel suite plus
# three 50k-instruction probe runs.
bench_stage 1 2.5

echo "CI OK"
